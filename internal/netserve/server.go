package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// ServerConfig sizes a Server.
type ServerConfig struct {
	// Shards is the backend scheduler count (≤ 0 selects 1); Service
	// configures each shard.
	Shards  int
	Service service.Config
	// Limits is the admission-control and quota policy, shared by all
	// connections. The zero value admits everything.
	Limits Limits
	// Probes is the monotonicity probe budget per submitted job.
	Probes int
	// IdleSession, when > 0, reaps online sessions idle longer than
	// this (checked at IdleSession/4 granularity, at least every
	// second) — the backstop for owners that vanish without a
	// disconnect (per-connection cleanup already covers clean and
	// abrupt disconnects).
	IdleSession time.Duration
}

// Server is the network front door: a concurrent TCP listener running
// one protocol session per connection against a sharded Router, plus
// an HTTP handler for health and stats. Create with NewServer, attach
// listeners with Serve (TCP) and Handler (HTTP), stop with Close.
type Server struct {
	cfg    ServerConfig
	router *Router
	lim    *Limiter
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	lns    []net.Listener        //sched:guardedby mu
	conns  map[net.Conn]struct{} //sched:guardedby mu
	closed bool                  //sched:guardedby mu
}

// NewServer builds the router and starts the idle-session reaper. ctx
// bounds the server's lifetime: when it ends, every connection's
// in-flight work is canceled (Close still must be called).
func NewServer(ctx context.Context, cfg ServerConfig) *Server {
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:    cfg,
		router: NewRouter(sctx, RouterConfig{Shards: cfg.Shards, Service: cfg.Service}),
		lim:    NewLimiter(cfg.Limits),
		ctx:    sctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	if cfg.IdleSession > 0 {
		period := cfg.IdleSession / 4
		if period < time.Second {
			period = time.Second
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-s.ctx.Done():
					return
				case <-t.C:
					s.router.ReapOnlineIdle(s.cfg.IdleSession)
				}
			}
		}()
	}
	return s
}

// Router exposes the backend router — the chaos tests' kill switch and
// the shard-level stats source.
func (s *Server) Router() *Router { return s.router }

// Serve accepts connections on ln until Close (or a fatal listener
// error) and runs one protocol session per connection. A "shutdown"
// request over TCP ends its own connection, never the process — a
// remote client must not be able to take down the fleet's front door.
func (s *Server) Serve(ln net.Listener) error {
	if !s.addListener(ln) {
		ln.Close()
		return net.ErrClosed
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.ctx.Err() != nil {
				return nil // closed by Close; not a fault
			}
			return err
		}
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			cctx, cancel := context.WithCancel(s.ctx)
			defer cancel()
			// Errors here are connection-scoped (peer vanished, bad
			// framing after 256 MiB): the session dies, the server
			// lives. The deferred cleanup in ServeLines has already
			// released the connection's online sessions.
			_ = ServeLines(cctx, s.router, conn, conn, ServeConfig{Probes: s.cfg.Probes, Limiter: s.lim})
		}()
	}
}

// addListener registers ln for Close; false means the server is
// already closed.
func (s *Server) addListener(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.lns = append(s.lns, ln)
	return true
}

// track registers or unregisters a live connection so Close can
// unblock their read loops; the live count feeds the wire_conns gauge.
func (s *Server) track(c net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[c] = struct{}{}
		obs.WireConns.Inc()
	} else {
		delete(s.conns, c)
		obs.WireConns.Dec()
	}
}

// RefreshObsGauges republishes the scrape-time gauges — the aggregate
// service counters and per-shard pending depths — onto the obs
// registry. The /metrics handler calls it per scrape; gauges derived
// from Stats snapshots are refreshed here rather than maintained on
// the hot path.
func (s *Server) RefreshObsGauges() {
	service.PublishStats(s.router.Stats())
	for i := 0; i < s.router.Shards(); i++ {
		obs.ServiceShardPending.With(strconv.Itoa(i)).Set(s.router.ShardStats(i).Pending)
	}
}

// Handler returns the HTTP side of the server:
//
//	GET /healthz — 200 "ok" when every shard is alive, 503 with the
//	               dead shard ids otherwise
//	GET /stats   — JSON {"stats": aggregate, "shards": per-shard,
//	               "alive": []bool}
//	GET /metrics — the obs registry in Prometheus text exposition
//	               format (docs/OBSERVABILITY.md); scrape-time gauges
//	               are refreshed from the router first
//	POST /rpc    — the wire protocol over HTTP: the request body is
//	               JSON-lines requests, the response body the
//	               JSON-lines responses (one protocol session per
//	               HTTP request)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.RefreshObsGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		var dead []int
		for i := 0; i < s.router.Shards(); i++ {
			if !s.router.Alive(i) {
				dead = append(dead, i)
			}
		}
		if len(dead) == 0 {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "degraded", "dead_shards": dead})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		shards := make([]service.Stats, s.router.Shards())
		alive := make([]bool, s.router.Shards())
		for i := range shards {
			shards[i] = s.router.ShardStats(i)
			alive[i] = s.router.Alive(i)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"stats": s.router.Stats(), "shards": shards, "alive": alive,
		})
	})
	mux.HandleFunc("POST /rpc", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = ServeLines(req.Context(), s.router, req.Body, w, ServeConfig{Probes: s.cfg.Probes, Limiter: s.lim})
	})
	return mux
}

// Close stops accepting, unblocks and joins every connection, cancels
// in-flight work, and shuts the shards down. Idempotent.
func (s *Server) Close() {
	lns, conns, already := s.beginClose()
	if already {
		return
	}
	s.cancel()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close() // unblock blocked Reads
	}
	s.wg.Wait()
	s.router.Close()
}

// beginClose atomically flips the server closed and takes ownership of
// the listener and connection sets; already=true means a prior Close
// won.
func (s *Server) beginClose() (lns []net.Listener, conns []net.Conn, already bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, true
	}
	s.closed = true
	lns = s.lns
	s.lns = nil
	for c := range s.conns {
		conns = append(conns, c)
	}
	return lns, conns, false
}
