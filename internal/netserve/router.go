package netserve

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/online"
	"repro/internal/scherr"
	"repro/internal/service"
)

// routeCap bounds the router's global-ticket translation table. Routes
// are deleted when their ticket is consumed (Wait, Poll-done, drain,
// release); this FIFO bounds retention for fire-and-forget clients that
// never collect, mirroring the per-shard uncollected-ticket cap of
// internal/service. An evicted ticket reports unknown_ticket, exactly
// like a service-evicted one.
const routeCap = 1 << 16

// RouterConfig sizes a Router.
type RouterConfig struct {
	// Shards is the number of backend schedulers; ≤ 0 selects 1.
	Shards int
	// Service configures each shard (workers, caches, memo budget).
	// Workers is per shard.
	Service service.Config
}

// Router fronts N service.Scheduler shards behind the Backend
// interface. Batch submissions are routed by the canonical instance
// hash (service.HashInstance) so structurally equal instances always
// land on the same shard — the per-shard result cache and memo
// registry keep the hit rates they had single-process. Unhashable
// instances and online sessions are spread round-robin. Tickets are
// translated into a router-global id space; clients never see shard-
// local ids.
//
// Kill marks a shard dead: its in-flight work is canceled at the next
// dual probe (every submission's context is merged with its shard's
// lifetime), collected tickets report ErrUnavailable, ops on its
// online sessions report ErrUnavailable, and NEW submissions fail over
// stickily (see below; service continues). The dead shard's worker
// pool is not closed until Close — closing it while the serve loops
// still route would turn a chaos event into a process panic.
//
// Failover is sticky: the first submission that finds its hash-affine
// shard dead adopts the least-loaded alive shard (by live-route count)
// as that dead shard's stand-in, and every later submission with the
// same affinity follows it. Without stickiness, each post-kill
// submission would ring-scan independently, scattering a dead shard's
// key space across the fleet and cold-starting the result cache and
// memo registry everywhere; with it, the re-warmed caches concentrate
// on one adoptive shard. Kill eagerly (re)assigns stand-ins so the
// first post-kill submission doesn't pay the scan.
//
// Lock order: fmu → mu, always. adopt and reassign hold fmu (the
// failover table's lock) while calling leastLoadedAlive, which takes
// mu for the route counts; no path acquires fmu while holding mu.
// schedlint's lockorder analyzer enforces exactly this.
type Router struct {
	shards []*shard
	seed   maphash.Seed
	nextID atomic.Uint64
	opens  atomic.Uint64 // round-robin cursor (online opens, unhashable instances)

	mu       sync.Mutex
	routes   map[uint64]route //sched:guardedby mu
	fifo     []uint64         //sched:guardedby mu — insertion order, for routeCap eviction
	perShard []int            //sched:guardedby mu — live routes per shard (failover load signal)

	fmu      sync.Mutex
	failover map[int]int //sched:guardedby fmu — dead shard → adopted alive stand-in
}

// shard is one backend scheduler plus its lifetime: ctx is canceled by
// Kill (and by the router ctx ending), which stops the shard's
// in-flight work at its next probe.
type shard struct {
	svc  *service.Scheduler
	ctx  context.Context
	kill context.CancelFunc
	dead atomic.Bool
}

// route translates one global ticket. A terminal route (err != nil)
// was never submitted to a shard: it completes immediately with err
// (all shards dead at submit time).
type route struct {
	shard  int
	local  uint64
	online bool
	err    error
}

// NewRouter creates a Router with cfg.Shards backend schedulers. ctx
// bounds the shards' collective lifetime: when it ends, all in-flight
// work is canceled (Close still must be called to stop the workers).
func NewRouter(ctx context.Context, cfg RouterConfig) *Router {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	r := &Router{
		shards:   make([]*shard, n),
		seed:     maphash.MakeSeed(),
		routes:   make(map[uint64]route),
		perShard: make([]int, n),
		failover: make(map[int]int),
	}
	for i := range r.shards {
		sctx, kill := context.WithCancel(ctx)
		r.shards[i] = &shard{svc: service.New(cfg.Service), ctx: sctx, kill: kill}
	}
	return r
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// ShardOf reports which shard a submission of in routes to while every
// shard is alive — the chaos tests' planning oracle.
func (r *Router) ShardOf(in *moldable.Instance) int {
	key, ok := service.HashInstance(r.seed, in)
	if !ok {
		return -1 // unhashable: round-robin at submit time
	}
	return int(key % uint64(len(r.shards)))
}

// Alive reports whether shard i accepts work.
func (r *Router) Alive(i int) bool { return !r.shards[i].dead.Load() }

// ShardStats snapshots one shard's counters (the HTTP /stats
// endpoint's per-shard view).
func (r *Router) ShardStats(i int) service.Stats { return r.shards[i].svc.Stats() }

// Kill marks shard i dead and cancels its in-flight work. Idempotent.
// The shard's workers stay up (idle) until Close; see the type comment.
func (r *Router) Kill(i int) {
	sh := r.shards[i]
	if sh.dead.CompareAndSwap(false, true) {
		sh.kill()
		r.reassign(i)
	}
}

// reassign eagerly repoints the failover table after shard dead died:
// dead itself, and any previously-adopted shard whose stand-in just
// died, get the current least-loaded alive shard. Takes fmu, then mu
// inside leastLoadedAlive — the one sanctioned nesting order.
func (r *Router) reassign(dead int) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	t, ok := r.leastLoadedAlive()
	if !ok {
		clear(r.failover) // everyone is dead; pick reports unavailable
		return
	}
	r.failover[dead] = t
	for d, old := range r.failover {
		if old == dead || r.shards[old].dead.Load() {
			r.failover[d] = t
		}
	}
}

// adopt resolves the sticky stand-in for a dead hash-affine shard,
// electing the least-loaded alive shard on first use (or when the
// recorded stand-in has itself died). ok=false means no shard is
// alive.
func (r *Router) adopt(dead int) (int, bool) {
	r.fmu.Lock()
	defer r.fmu.Unlock()
	if t, ok := r.failover[dead]; ok && !r.shards[t].dead.Load() {
		return t, true
	}
	t, ok := r.leastLoadedAlive()
	if !ok {
		return 0, false
	}
	r.failover[dead] = t
	return t, true
}

// leastLoadedAlive returns the alive shard with the fewest live
// routes. Callers may hold fmu; this takes mu, so the global
// acquisition order is fmu → mu and never the reverse.
func (r *Router) leastLoadedAlive() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	best, bestLoad, ok := 0, 0, false
	for j := range r.shards {
		if r.shards[j].dead.Load() {
			continue
		}
		if !ok || r.perShard[j] < bestLoad {
			best, bestLoad, ok = j, r.perShard[j], true
		}
	}
	return best, ok
}

// Close cancels and stops every shard. Call only after all serve
// loops using the router have returned.
func (r *Router) Close() {
	for _, sh := range r.shards {
		sh.kill()
		sh.svc.Close()
	}
}

// pick selects the shard for an instance: hash-affine when canonical
// (following the sticky failover table when the affine shard is dead),
// round-robin past dead shards otherwise. ok=false means every shard
// is dead.
func (r *Router) pick(in *moldable.Instance) (int, bool) {
	n := len(r.shards)
	i := r.ShardOf(in)
	if i < 0 {
		// Unhashable: no affinity to preserve, any alive shard does.
		i = int(r.opens.Add(1) % uint64(n))
		for off := 0; off < n; off++ {
			j := (i + off) % n
			if !r.shards[j].dead.Load() {
				return j, true
			}
		}
		return 0, false
	}
	if !r.shards[i].dead.Load() {
		return i, true
	}
	return r.adopt(i)
}

// storeRoute registers a global ticket, evicting the oldest routes
// beyond routeCap. Live (non-terminal) routes count toward their
// shard's failover load signal.
func (r *Router) storeRoute(gid uint64, rt route) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[gid] = rt
	if rt.err == nil {
		r.perShard[rt.shard]++
	}
	r.fifo = append(r.fifo, gid)
	for len(r.fifo) > routeCap {
		if old, ok := r.routes[r.fifo[0]]; ok && old.err == nil {
			r.perShard[old.shard]--
		}
		delete(r.routes, r.fifo[0])
		r.fifo = r.fifo[1:]
	}
}

func (r *Router) loadRoute(gid uint64) (route, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[gid]
	return rt, ok
}

func (r *Router) deleteRoute(gid uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt, ok := r.routes[gid]; ok && rt.err == nil {
		r.perShard[rt.shard]--
	}
	delete(r.routes, gid)
}

// SubmitCtx routes one submission (Backend). The submission's context
// is merged with its shard's lifetime so Kill cancels the work mid-
// probe; results collected from a dead shard report ErrUnavailable.
func (r *Router) SubmitCtx(ctx context.Context, in *moldable.Instance, opt core.Options) uint64 {
	gid := r.nextID.Add(1)
	i, ok := r.pick(in)
	if !ok {
		r.storeRoute(gid, route{err: fmt.Errorf("%w: all %d shards killed", ErrUnavailable, len(r.shards))})
		return gid
	}
	sh := r.shards[i]
	// Merge the request context with the shard lifetime: whichever
	// ends first cancels the submission. The watcher goroutine holds
	// the merge only until the ticket completes.
	sctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(sh.ctx, cancel)
	local := sh.svc.SubmitCtx(sctx, in, opt)
	if done, okDone := sh.svc.Done(local); okDone {
		go func() {
			<-done
			stop()
			cancel()
		}()
	} else {
		stop()
		cancel()
	}
	r.storeRoute(gid, route{shard: i, local: local})
	return gid
}

// xlate rewrites a canceled result from a dead shard into the typed
// terminal ErrUnavailable: the caller's deadline did not win, the
// shard's death did.
func (r *Router) xlate(rt route, err error) error {
	if err == nil || rt.err != nil {
		return err
	}
	if r.shards[rt.shard].dead.Load() && errors.Is(err, scherr.ErrCanceled) {
		return fmt.Errorf("%w: shard %d killed mid-run (%v)", ErrUnavailable, rt.shard, err)
	}
	return err
}

// Wait collects a global ticket (Backend).
func (r *Router) Wait(gid uint64) (service.Result, bool) {
	rt, ok := r.loadRoute(gid)
	if !ok {
		return service.Result{}, false
	}
	if rt.err != nil {
		r.deleteRoute(gid)
		return service.Result{Err: rt.err}, true
	}
	res, ok := r.shards[rt.shard].svc.Wait(rt.local)
	r.deleteRoute(gid)
	if ok {
		res.Err = r.xlate(rt, res.Err)
	}
	return res, ok
}

// Poll collects a global ticket without blocking (Backend).
func (r *Router) Poll(gid uint64) (res service.Result, done, known bool) {
	rt, ok := r.loadRoute(gid)
	if !ok {
		return service.Result{}, false, false
	}
	if rt.err != nil {
		r.deleteRoute(gid)
		return service.Result{Err: rt.err}, true, true
	}
	res, done, known = r.shards[rt.shard].svc.Poll(rt.local)
	if done || !known {
		r.deleteRoute(gid)
	}
	if known {
		res.Err = r.xlate(rt, res.Err)
	}
	return res, done, known
}

// Done observes a global ticket's completion (Backend).
func (r *Router) Done(gid uint64) (<-chan struct{}, bool) {
	rt, ok := r.loadRoute(gid)
	if !ok {
		return nil, false
	}
	if rt.err != nil {
		return closedChan, true
	}
	return r.shards[rt.shard].svc.Done(rt.local)
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// OpenOnline opens a session on a round-robin-selected alive shard
// (Backend). Sessions have no content hash to route by; spreading them
// balances the stateful load.
func (r *Router) OpenOnline(cfg online.Config) (uint64, error) {
	n := len(r.shards)
	start := int(r.opens.Add(1) % uint64(n))
	for off := 0; off < n; off++ {
		i := (start + off) % n
		sh := r.shards[i]
		if sh.dead.Load() {
			continue
		}
		local, err := sh.svc.OpenOnline(cfg)
		if err != nil {
			return 0, err
		}
		gid := r.nextID.Add(1)
		r.storeRoute(gid, route{shard: i, local: local, online: true})
		return gid, nil
	}
	return 0, fmt.Errorf("%w: all %d shards killed", ErrUnavailable, n)
}

// onlineRoute resolves a session ticket, translating dead shards into
// ErrUnavailable.
func (r *Router) onlineRoute(gid uint64) (route, *shard, error) {
	rt, ok := r.loadRoute(gid)
	if !ok || !rt.online {
		return route{}, nil, service.ErrUnknownSession
	}
	sh := r.shards[rt.shard]
	if sh.dead.Load() {
		return rt, sh, fmt.Errorf("%w: shard %d owning this session was killed", ErrUnavailable, rt.shard)
	}
	return rt, sh, nil
}

// OnlineMachine reports a session's machine size (Backend).
func (r *Router) OnlineMachine(gid uint64) (int, error) {
	rt, sh, err := r.onlineRoute(gid)
	if err != nil {
		return 0, err
	}
	return sh.svc.OnlineMachine(rt.local)
}

// OnlineArrive feeds a session one arrival (Backend). The call is
// bounded by the shard lifetime like SubmitCtx, so a Kill mid-replan
// surfaces promptly as ErrUnavailable rather than running on.
func (r *Router) OnlineArrive(ctx context.Context, gid uint64, a online.Arrival) ([]online.Event, error) {
	rt, sh, err := r.onlineRoute(gid)
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(sh.ctx, cancel)
	defer stop()
	evs, err := sh.svc.OnlineArrive(sctx, rt.local, a)
	return evs, r.xlate(rt, err)
}

// OnlineTrace snapshots a session's event log (Backend).
func (r *Router) OnlineTrace(gid uint64) ([]online.Event, error) {
	rt, sh, err := r.onlineRoute(gid)
	if err != nil {
		return nil, err
	}
	return sh.svc.OnlineTrace(rt.local)
}

// OnlineDrain runs a session to completion and releases its ticket
// (Backend), mirroring the service's keep-on-cancel semantics.
func (r *Router) OnlineDrain(ctx context.Context, gid uint64) ([]online.Event, online.Metrics, error) {
	rt, sh, err := r.onlineRoute(gid)
	if err != nil {
		return nil, online.Metrics{}, err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(sh.ctx, cancel)
	defer stop()
	evs, met, err := sh.svc.OnlineDrain(sctx, rt.local)
	err = r.xlate(rt, err)
	if err == nil || !errors.Is(err, scherr.ErrCanceled) {
		r.deleteRoute(gid) // released server-side (also on poisoned drains)
	}
	return evs, met, err
}

// ReleaseOnline abandons a session without draining (Backend). Works
// on dead shards too — cleanup must outlive a chaos kill.
func (r *Router) ReleaseOnline(gid uint64) bool {
	rt, ok := r.loadRoute(gid)
	if !ok || !rt.online {
		return false
	}
	r.deleteRoute(gid)
	return r.shards[rt.shard].svc.ReleaseOnline(rt.local)
}

// ReapOnlineIdle reaps idle sessions on every shard (Backend). Stale
// routes to reaped sessions resolve to unknown_ticket on next use and
// age out of the route FIFO.
func (r *Router) ReapOnlineIdle(maxIdle time.Duration) int {
	n := 0
	for _, sh := range r.shards {
		n += sh.svc.ReapOnlineIdle(maxIdle)
	}
	return n
}

// Stats aggregates every shard's counters (Backend): the wire-visible
// stats op reports fleet totals; per-shard views are on the HTTP
// /stats endpoint.
func (r *Router) Stats() service.Stats {
	var agg service.Stats
	for _, sh := range r.shards {
		st := sh.svc.Stats()
		agg.Submitted += st.Submitted
		agg.Completed += st.Completed
		agg.Pending += st.Pending
		agg.Errors += st.Errors
		agg.ResultHits += st.ResultHits
		agg.OracleHits += st.OracleHits
		agg.OracleMisses += st.OracleMisses
		agg.MemoizedInstances += st.MemoizedInstances
		agg.CachedResults += st.CachedResults
		agg.OnlineSessions += st.OnlineSessions
		agg.OnlineOpened += st.OnlineOpened
		agg.OnlineArrivals += st.OnlineArrivals
	}
	return agg
}
