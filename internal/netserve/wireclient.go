package netserve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/online"
	"repro/internal/schedule"
	"repro/internal/scherr"
	"repro/internal/service"
)

// WireClient speaks the moldschedd wire protocol over one connection:
// the client side of ServeLines, used by repro.Client's WithDial
// option. Requests are correlated by unique tags (submit, open_online,
// hello, stats) or ticket ids (result, arrive, trace, drain); a reader
// goroutine demultiplexes the interleaved responses, so the client is
// safe for concurrent use — with the protocol's own caveat that ops on
// one online session must stay sequential.
type WireClient struct {
	conn net.Conn

	wmu sync.Mutex
	enc *json.Encoder //sched:guardedby wmu

	mu      sync.Mutex
	tags    map[string]chan Response //sched:guardedby mu
	ids     map[uint64]chan Response //sched:guardedby mu
	broken  error                    //sched:guardedby mu — terminal transport error
	seq     atomic.Uint64
	readerd chan struct{} // closed when the reader goroutine exits
}

// Dial connects a WireClient to a moldschedd TCP listener.
func Dial(ctx context.Context, addr string) (*WireClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &WireClient{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		tags:    make(map[string]chan Response),
		ids:     make(map[uint64]chan Response),
		readerd: make(chan struct{}),
	}
	go func() {
		defer close(c.readerd)
		c.readLoop()
	}()
	return c, nil
}

// Close tears the connection down; in-flight calls fail promptly.
func (c *WireClient) Close() error {
	err := c.conn.Close()
	<-c.readerd
	return err
}

// readLoop demultiplexes responses until the connection dies, then
// fails every pending waiter.
func (c *WireClient) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue // unparsable response line; protocol noise, skip
		}
		c.mu.Lock()
		var ch chan Response
		if r.Tag != "" {
			ch = c.tags[r.Tag]
			delete(c.tags, r.Tag)
		} else if r.ID != 0 {
			ch = c.ids[r.ID]
			delete(c.ids, r.ID)
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- r // buffered 1; never blocks
		}
	}
	err := sc.Err()
	if err == nil {
		err = fmt.Errorf("%w: connection closed", ErrUnavailable)
	}
	c.mu.Lock()
	c.broken = err
	tags, ids := c.tags, c.ids
	c.tags, c.ids = map[string]chan Response{}, map[uint64]chan Response{}
	c.mu.Unlock()
	for _, ch := range tags {
		close(ch)
	}
	for _, ch := range ids {
		close(ch)
	}
}

// call sends req and waits for the response registered under reg
// (register must have been called before sending — responses can
// arrive before Encode returns).
func (c *WireClient) call(ctx context.Context, req Request, reg func() (chan Response, func())) (Response, error) {
	ch, unregister := reg()
	if ch == nil {
		c.mu.Lock()
		err := c.broken
		c.mu.Unlock()
		return Response{}, err
	}
	c.wmu.Lock()
	err := c.enc.Encode(req)
	c.wmu.Unlock()
	if err != nil {
		unregister()
		return Response{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.broken
			c.mu.Unlock()
			return Response{}, err
		}
		return r, nil
	case <-ctx.Done():
		unregister()
		return Response{}, scherr.Canceled(ctx.Err())
	}
}

// regTag registers a waiter for a tagged response; nil channel means
// the transport is already broken.
func (c *WireClient) regTag(tag string) (chan Response, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, nil
	}
	ch := make(chan Response, 1)
	c.tags[tag] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.tags, tag)
	}
}

// regID registers a waiter for an id-correlated response.
func (c *WireClient) regID(id uint64) (chan Response, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, nil
	}
	ch := make(chan Response, 1)
	c.ids[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.ids, id)
	}
}

func (c *WireClient) nextTag() string {
	return "q" + strconv.FormatUint(c.seq.Add(1), 10)
}

// Hello declares the connection's tenant id (quota bucket key).
func (c *WireClient) Hello(ctx context.Context, tenant string) error {
	tag := c.nextTag()
	_, err := c.call(ctx, Request{Op: "hello", Tag: tag, Tenant: tenant}, func() (chan Response, func()) { return c.regTag(tag) })
	return err
}

// Submit submits one instance and returns its ticket. A ctx deadline
// is forwarded as timeout_ms so the server sheds and cancels
// server-side too, not only at the client.
func (c *WireClient) Submit(ctx context.Context, in *moldable.Instance, opt core.Options, wantSchedule bool) (uint64, error) {
	raw, err := moldable.MarshalInstance(in)
	if err != nil {
		return 0, fmt.Errorf("encoding instance: %w", err)
	}
	req := Request{
		Op: "submit", Tag: c.nextTag(), Algo: opt.Algorithm.String(), Eps: opt.Eps,
		Validate: opt.Validate, Instance: raw, Schedule: wantSchedule,
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Seconds() * 1000; ms > 0 {
			req.TimeoutMS = ms
		}
	}
	r, err := c.call(ctx, req, func() (chan Response, func()) { return c.regTag(req.Tag) })
	if err != nil {
		return 0, err
	}
	if r.Code != "" {
		return 0, codeToErr(r.Code, r.Error)
	}
	return r.ID, nil
}

// Result collects a ticket (wait=true blocks server-side). m is the
// submitted instance's machine size, needed to rebuild the schedule;
// the returned Result mirrors what an in-process service call yields,
// except that only wire-carried report fields are populated.
func (c *WireClient) Result(ctx context.Context, id uint64, wait bool, in *moldable.Instance) (service.Result, error) {
	req := Request{Op: "result", ID: id, Wait: wait}
	r, err := c.call(ctx, req, func() (chan Response, func()) { return c.regID(id) })
	if err != nil {
		return service.Result{}, err
	}
	if r.Code != "" {
		return service.Result{Err: codeToErr(r.Code, r.Error)}, nil
	}
	if r.Done == nil || !*r.Done {
		return service.Result{}, fmt.Errorf("ticket %d still pending", id)
	}
	res := service.Result{Cached: r.Cached, Report: reportFromWire(r)}
	if len(r.Allot) > 0 {
		res.Schedule = scheduleFromWire(in, r)
	}
	return res, nil
}

// reportFromWire rebuilds the wire-carried subset of a core.Report.
func reportFromWire(r Response) *core.Report {
	rep := &core.Report{
		Makespan: r.Makespan, LowerBound: r.LowerBound, Ratio: r.Ratio,
		Iterations: r.Iterations,
		Elapsed:    time.Duration(r.ElapsedMS * float64(time.Millisecond)), //schedlint:ignore fpconv informational duration; truncating the sub-nanosecond tail of a reported elapsed time is harmless
	}
	if a, err := core.ParseAlgorithm(r.Algorithm); err == nil {
		rep.Algorithm = a
	}
	return rep
}

// scheduleFromWire rebuilds a schedule from allot (+ starts, when the
// submit asked for them); durations are re-derived from the instance's
// own oracles, which the client holds.
func scheduleFromWire(in *moldable.Instance, r Response) *schedule.Schedule {
	s := schedule.New(in.M)
	for j, procs := range r.Allot {
		p := schedule.Placement{Job: j, Procs: procs, FirstProc: -1}
		if j < len(r.Starts) {
			p.Start = r.Starts[j]
		}
		if j < in.N() && procs >= 1 {
			p.Duration = in.Jobs[j].Time(procs)
		}
		s.Placements = append(s.Placements, p)
	}
	return s
}

// Stats snapshots the server's aggregated counters.
func (c *WireClient) Stats(ctx context.Context) (service.Stats, error) {
	tag := c.nextTag()
	r, err := c.call(ctx, Request{Op: "stats", Tag: tag}, func() (chan Response, func()) { return c.regTag(tag) })
	if err != nil {
		return service.Stats{}, err
	}
	if r.Stats == nil {
		return service.Stats{}, fmt.Errorf("stats response carried no payload")
	}
	return *r.Stats, nil
}

// OpenOnline opens a remote online session.
func (c *WireClient) OpenOnline(ctx context.Context, cfg online.Config) (uint64, error) {
	req := Request{
		Op: "open_online", Tag: c.nextTag(), M: cfg.M, Policy: cfg.Policy.String(),
		Algo: cfg.Algorithm.String(), Eps: cfg.Eps,
		EpochMin: float64(cfg.EpochMin), EpochGrow: cfg.EpochGrow,
	}
	r, err := c.call(ctx, req, func() (chan Response, func()) { return c.regTag(req.Tag) })
	if err != nil {
		return 0, err
	}
	if r.Code != "" {
		return 0, codeToErr(r.Code, r.Error)
	}
	return r.ID, nil
}

// Arrive admits one arrival into a remote session.
func (c *WireClient) Arrive(ctx context.Context, id uint64, a online.Arrival) ([]online.Event, error) {
	raw, err := moldable.MarshalJob(a.Job)
	if err != nil {
		return nil, fmt.Errorf("encoding job: %w", err)
	}
	req := Request{Op: "arrive", ID: id, T: float64(a.T), Job: raw}
	r, err := c.call(ctx, req, func() (chan Response, func()) { return c.regID(id) })
	if err != nil {
		return nil, err
	}
	evs := eventsFromWire(r.Events)
	if r.Code != "" {
		return evs, codeToErr(r.Code, r.Error)
	}
	return evs, nil
}

// Drain runs a remote session to completion and releases it.
func (c *WireClient) Drain(ctx context.Context, id uint64) ([]online.Event, online.Metrics, error) {
	req := Request{Op: "drain", ID: id}
	r, err := c.call(ctx, req, func() (chan Response, func()) { return c.regID(id) })
	if err != nil {
		return nil, online.Metrics{}, err
	}
	evs := eventsFromWire(r.Events)
	if r.Code != "" {
		return evs, online.Metrics{}, codeToErr(r.Code, r.Error)
	}
	met := online.Metrics{
		Makespan: r.Makespan, MeanWait: moldable.Time(r.MeanWait),
		MeanFlow: moldable.Time(r.MeanFlow), MaxFlow: moldable.Time(r.MaxFlow),
		Utilization: r.Util, Replans: r.Replans, Fallbacks: r.Fallbacks,
		Finished: r.Finished,
	}
	return evs, met, nil
}

func eventsFromWire(ws []WireEvent) []online.Event {
	if len(ws) == 0 {
		return nil
	}
	out := make([]online.Event, len(ws))
	for i, w := range ws {
		out[i] = eventFromWire(w)
	}
	return out
}
