package netserve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// The protocol-conformance suite: one canonical script touching every
// op of docs/PROTOCOL.md — submit/result/stats/shutdown, the online
// quartet open_online/arrive/trace/drain, and every protocol-level
// error shape (malformed JSON, unknown op, unknown tickets, bad algo,
// bad instance, bad eps, non-monotone input, canceled deadlines) — is
// replayed once through the pipe-mode serve loop (exactly what
// `moldschedd < requests.jsonl` runs) and once over a real TCP
// connection to a 3-shard Server. The two response streams must be
// byte-identical after normalizing ticket ids and elapsed times: the
// socket transport may not change what the protocol says.

// cstep is one lockstep exchange: send the request line (after
// substituting ${name} ticket references), read exactly one response.
// saveID remembers the response's id under a symbolic name for later
// steps.
type cstep struct {
	line   string
	saveID string
}

var conformanceScript = []cstep{
	// Tenant binding acks and echoes.
	{line: `{"op":"hello","tag":"h1","tenant":"acme"}`},
	// A client-supplied trace id echoes verbatim on every transport
	// (playScript asserts the echo; see also the trace_id rows of
	// docs/PROTOCOL.md).
	{line: `{"op":"hello","tag":"h2","tenant":"acme","trace_id":"client-tid-1"}`},
	// Batch happy path: submit, blocking result (with starts), cache hit.
	{line: `{"op":"submit","tag":"a1","algo":"auto","eps":0.25,"schedule":true,"instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"power","w":50,"alpha":0.8}]}}`, saveID: "t1"},
	{line: `{"op":"result","id":${t1},"wait":true}`},
	{line: `{"op":"submit","tag":"a2","algo":"auto","eps":0.25,"instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"power","w":50,"alpha":0.8}]}}`, saveID: "t2"},
	{line: `{"op":"result","id":${t2},"wait":true}`},
	// Every named algorithm answers over the wire.
	{line: `{"op":"submit","tag":"a3","algo":"conv","eps":0.25,"instance":{"m":256,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"power","w":50,"alpha":0.8}]}}`, saveID: "t3"},
	{line: `{"op":"result","id":${t3},"wait":true}`},
	// result on a consumed ticket, then on a never-issued one.
	{line: `{"op":"result","id":${t3},"wait":true}`},
	{line: `{"op":"result","id":999999,"wait":false,"trace_id":"client-tid-2"}`},
	// Error shapes: unparsable line, unknown op, bad algo, bad instance
	// JSON, structurally invalid instance, bad eps, non-monotone job,
	// and a deadline that expires before validation (canceled).
	{line: `{not json at all`},
	{line: `{"op":"frobnicate","tag":"e1"}`},
	{line: `{"op":"submit","tag":"e2","algo":"simplex","instance":{"m":4,"jobs":[{"type":"perfect","w":8}]}}`},
	{line: `{"op":"submit","tag":"e3","instance":{"m":4,"jobs":[{"type":"warp","w":8}]}}`},
	{line: `{"op":"submit","tag":"e4","instance":{"m":0,"jobs":[{"type":"perfect","w":8}]}}`},
	{line: `{"op":"submit","tag":"e5","eps":7.5,"instance":{"m":4,"jobs":[{"type":"perfect","w":8}]}}`, saveID: "teps"},
	{line: `{"op":"result","id":${teps},"wait":true}`},
	{line: `{"op":"submit","tag":"e6","instance":{"m":4,"jobs":[{"type":"table","times":[2,5]}]}}`},
	{line: `{"op":"submit","tag":"e7","timeout_ms":1e-7,"instance":{"m":4,"jobs":[{"type":"perfect","w":8}]}}`},
	// Online sessions: open, arrive, trace, drain, and the misuse
	// shapes (bad policy, bad m, missing/bad/non-monotone job,
	// out-of-order timestamps, every op on unknown tickets, arrive
	// after drain).
	{line: `{"op":"open_online","tag":"s1","m":64,"policy":"epoch","eps":0.5}`, saveID: "sess"},
	{line: `{"op":"arrive","id":${sess},"t":0,"job":{"type":"amdahl","seq":2,"par":98}}`},
	{line: `{"op":"arrive","id":${sess},"t":1,"job":{"type":"power","w":50,"alpha":0.8}}`},
	{line: `{"op":"trace","id":${sess}}`},
	{line: `{"op":"arrive","id":${sess},"t":0.5,"job":{"type":"perfect","w":8}}`},
	{line: `{"op":"arrive","id":${sess}}`},
	{line: `{"op":"arrive","id":${sess},"t":2,"job":{"type":"warp","w":8}}`},
	{line: `{"op":"arrive","id":${sess},"t":2,"job":{"type":"table","times":[2,5]}}`},
	{line: `{"op":"drain","id":${sess}}`},
	{line: `{"op":"arrive","id":${sess},"t":3,"job":{"type":"perfect","w":8}}`},
	{line: `{"op":"open_online","tag":"s2","policy":"wishful","m":8}`},
	{line: `{"op":"open_online","tag":"s3","m":0}`},
	{line: `{"op":"open_online","tag":"s4","m":8,"eps":9}`},
	{line: `{"op":"trace","id":424242}`},
	{line: `{"op":"drain","id":424242}`},
	// Aggregated counters after identical work must agree.
	{line: `{"op":"stats","tag":"st"}`},
	{line: `{"op":"shutdown","tag":"bye"}`},
}

// lockConn drives one transport in lockstep.
type lockConn struct {
	t   *testing.T
	w   io.Writer
	dec *json.Decoder
}

func (c *lockConn) roundTrip(line string) Response {
	c.t.Helper()
	if _, err := io.WriteString(c.w, line+"\n"); err != nil {
		c.t.Fatalf("writing request %q: %v", line, err)
	}
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		c.t.Fatalf("reading response to %q: %v", line, err)
	}
	return r
}

// playScript runs the conformance script over one transport and
// returns the raw responses in order.
func playScript(t *testing.T, c *lockConn) []Response {
	t.Helper()
	ids := map[string]uint64{}
	var out []Response
	for _, st := range conformanceScript {
		line := st.line
		for name, id := range ids {
			line = strings.ReplaceAll(line, "${"+name+"}", fmt.Sprint(id))
		}
		if strings.Contains(line, "${") {
			t.Fatalf("unresolved ticket reference in %q", line)
		}
		r := c.roundTrip(line)
		// The trace_id echo guarantee (ISSUE 9): every frame — error
		// frames for unparsable lines included — carries a trace id, and
		// a client-supplied one echoes verbatim.
		if r.TraceID == "" {
			t.Errorf("request %q: response carries no trace_id: %+v", line, r)
		}
		var req Request
		if json.Unmarshal([]byte(line), &req) == nil && req.TraceID != "" && r.TraceID != req.TraceID {
			t.Errorf("request %q: trace_id %q not echoed (got %q)", line, req.TraceID, r.TraceID)
		}
		if st.saveID != "" {
			ids[st.saveID] = r.ID
		}
		out = append(out, r)
	}
	return out
}

// normalize canonicalizes the transport-dependent parts of a response
// stream: ticket ids and server-assigned trace ids ("t-<n>", drawn
// from a process-global counter) are remapped to first-seen ordinals,
// and elapsed times zeroed. Client-supplied trace ids pass through —
// the echo must be verbatim. Everything else — op echo, tags, codes,
// error texts, allotments, start times, events, metrics, aggregated
// stats — must already be identical.
func normalize(rs []Response) []Response {
	idmap := map[uint64]uint64{}
	remap := func(id uint64) uint64 {
		if id == 0 {
			return 0
		}
		if v, ok := idmap[id]; ok {
			return v
		}
		v := uint64(len(idmap) + 1)
		idmap[id] = v
		return v
	}
	tidmap := map[string]string{}
	remapTID := func(tid string) string {
		if !strings.HasPrefix(tid, "t-") {
			return tid
		}
		if v, ok := tidmap[tid]; ok {
			return v
		}
		v := fmt.Sprintf("t-%d", len(tidmap)+1)
		tidmap[tid] = v
		return v
	}
	out := make([]Response, len(rs))
	for i, r := range rs {
		r.ID = remap(r.ID)
		r.TraceID = remapTID(r.TraceID)
		r.ElapsedMS = 0
		out[i] = r
	}
	return out
}

// TestConformance pins that the TCP transport is byte-equivalent to
// pipe mode: the same request script yields the same response bytes
// (modulo ticket ids and elapsed times) whether it flows through
// ServeLines on a pipe against one scheduler or over a socket to a
// sharded Server.
func TestConformance(t *testing.T) {
	pipe := normalize(playPipe(t))
	tcp := normalize(playTCP(t, 3))

	if len(pipe) != len(tcp) {
		t.Fatalf("response count differs: pipe %d, tcp %d", len(pipe), len(tcp))
	}
	for i := range pipe {
		pj, err := json.Marshal(pipe[i])
		if err != nil {
			t.Fatalf("marshal pipe response %d: %v", i, err)
		}
		tj, err := json.Marshal(tcp[i])
		if err != nil {
			t.Fatalf("marshal tcp response %d: %v", i, err)
		}
		if string(pj) != string(tj) {
			t.Errorf("request %q:\n  pipe: %s\n  tcp:  %s", conformanceScript[i].line, pj, tj)
		}
	}
}

// playPipe runs the script through ServeLines on in-process pipes —
// the exact code path of `moldschedd` without -listen.
func playPipe(t *testing.T) []Response {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- ServeLines(context.Background(), svc, inR, outW, ServeConfig{Probes: 64})
	}()
	rs := playScript(t, &lockConn{t: t, w: inW, dec: json.NewDecoder(outR)})
	if err := <-errc; err != nil { // script ends in shutdown
		t.Fatalf("pipe serve loop: %v", err)
	}
	inW.Close()
	outW.Close()
	return rs
}

// playTCP runs the script over a real socket to a Server with the
// given shard count.
func playTCP(t *testing.T, shards int) []Response {
	t.Helper()
	srv := NewServer(context.Background(), ServerConfig{
		Shards:  shards,
		Service: service.Config{Workers: 2},
		Probes:  64,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Minute))
	rs := playScript(t, &lockConn{t: t, w: conn, dec: json.NewDecoder(bufio.NewReader(conn))})
	conn.Close()
	srv.Close()
	if err := <-errc; err != nil {
		t.Fatalf("tcp serve: %v", err)
	}
	return rs
}
