package netserve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/service"
)

// The stats trace dimension (ISSUE 9): a "stats" request with
// "trace":true returns the sampled decision traces, and a decision
// made on behalf of a trace_id-tagged submit carries that id — over
// the pipe transport and over TCP alike.

const traceWireInstance = `{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"power","w":50,"alpha":0.8}]}`

// driveTraceScript submits under an explicit trace id, waits for the
// result, and asks stats for the traces; it returns the stats
// response.
func driveTraceScript(t *testing.T, c *lockConn, tid string) Response {
	t.Helper()
	sub := c.roundTrip(fmt.Sprintf(`{"op":"submit","tag":"tw","algo":"linear","eps":0.25,"trace_id":%q,"instance":%s}`, tid, traceWireInstance))
	if sub.Error != "" {
		t.Fatalf("submit failed: %+v", sub)
	}
	if res := c.roundTrip(fmt.Sprintf(`{"op":"result","id":%d,"wait":true}`, sub.ID)); res.Error != "" {
		t.Fatalf("result failed: %+v", res)
	}
	st := c.roundTrip(`{"op":"stats","tag":"tw","trace":true}`)
	if st.Error != "" {
		t.Fatalf("stats failed: %+v", st)
	}
	return st
}

// checkTraces asserts the stats response carries sampled traces and
// that the submit's trace id is among them with a sane payload.
func checkTraces(t *testing.T, st Response, tid string) {
	t.Helper()
	if len(st.Traces) == 0 {
		t.Fatal("stats with trace:true returned no traces")
	}
	for _, tr := range st.Traces {
		if tr.TraceID != tid {
			continue
		}
		if tr.Source == "" || tr.Algo != "linear" || tr.N != 2 || tr.M != 64 {
			t.Errorf("trace payload for %q looks wrong: %+v", tid, tr)
		}
		return
	}
	t.Errorf("no trace carries the submit's trace_id %q: %+v", tid, st.Traces)
}

func TestStatsTraceDimensionPipe(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- ServeLines(context.Background(), svc, inR, outW, ServeConfig{Probes: 64})
	}()
	c := &lockConn{t: t, w: inW, dec: json.NewDecoder(outR)}
	st := driveTraceScript(t, c, "trace-dim-pipe")
	if r := c.roundTrip(`{"op":"shutdown"}`); r.Op != "shutdown" {
		t.Fatalf("shutdown ack: %+v", r)
	}
	if err := <-errc; err != nil {
		t.Fatalf("pipe serve loop: %v", err)
	}
	inW.Close()
	outW.Close()
	checkTraces(t, st, "trace-dim-pipe")
}

func TestStatsTraceDimensionTCP(t *testing.T) {
	srv := NewServer(context.Background(), ServerConfig{
		Shards:  2,
		Service: service.Config{Workers: 1},
		Probes:  64,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Minute))
	c := &lockConn{t: t, w: conn, dec: json.NewDecoder(bufio.NewReader(conn))}
	st := driveTraceScript(t, c, "trace-dim-tcp")
	conn.Close()
	srv.Close()
	if err := <-errc; err != nil {
		t.Fatalf("tcp serve: %v", err)
	}
	checkTraces(t, st, "trace-dim-tcp")
}
