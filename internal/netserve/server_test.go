package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/online"
	"repro/internal/service"
)

// --- Limiter ---

func TestLimiterAdmission(t *testing.T) {
	l := NewLimiter(Limits{MaxInflight: 2})
	ctx := context.Background()
	if err := l.acquire(ctx, "acme", false); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.acquire(ctx, "acme", false); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	// Budget exhausted: a no-deadline request sheds immediately, typed.
	if err := l.acquire(ctx, "acme", false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: %v, want ErrOverloaded", err)
	}
	// Deadline-based shedding: a waiting request sheds when its
	// deadline arrives before capacity does.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := l.acquire(short, "acme", true); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("waiting acquire: %v, want ErrOverloaded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("waiting acquire shed before its deadline")
	}
	// A released slot readmits.
	l.release("acme")
	if err := l.acquire(ctx, "acme", false); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	// The nil limiter admits everything.
	var nilL *Limiter
	if err := nilL.acquire(ctx, "acme", false); err != nil {
		t.Fatalf("nil limiter: %v", err)
	}
	nilL.release("acme")
	if err := nilL.takeToken("acme"); err != nil {
		t.Fatalf("nil limiter token: %v", err)
	}
}

func TestLimiterQuota(t *testing.T) {
	// Burst 2 at a negligible refill rate: two requests pass, the third
	// sheds; a different tenant draws from its own bucket.
	l := NewLimiter(Limits{QuotaRate: 0.001, QuotaBurst: 2})
	for i := 0; i < 2; i++ {
		if err := l.takeToken("acme"); err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
	}
	if err := l.takeToken("acme"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-quota token: %v, want ErrOverloaded", err)
	}
	if err := l.takeToken("globex"); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	// Anonymous connections share the "" bucket rather than bypassing.
	if err := l.takeToken(""); err != nil {
		t.Fatalf("anonymous first: %v", err)
	}
	// Quotas disabled: unlimited.
	open := NewLimiter(Limits{})
	for i := 0; i < 100; i++ {
		if err := open.takeToken("acme"); err != nil {
			t.Fatalf("unlimited token %d: %v", i, err)
		}
	}
}

// --- Wire-level shedding (deterministic via a stub backend) ---

// stubBackend is a Backend whose tickets complete only when the test
// closes done — the deterministic way to hold admission slots occupied.
// Ops the test never exercises fall through to the embedded nil Backend
// and would panic loudly.
type stubBackend struct {
	Backend
	done chan struct{}

	mu   sync.Mutex
	next uint64 //sched:guardedby mu
}

func (b *stubBackend) SubmitCtx(context.Context, *moldable.Instance, core.Options) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next++
	return b.next
}

func (b *stubBackend) Done(uint64) (<-chan struct{}, bool) { return b.done, true }

func TestServeLinesShedsWhenSaturated(t *testing.T) {
	stub := &stubBackend{done: make(chan struct{})}
	lim := NewLimiter(Limits{MaxInflight: 1})
	inst := `{"m":8,"jobs":[{"type":"perfect","w":8}]}`

	inR, inW := io.Pipe()
	var out lockedBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- ServeLines(context.Background(), stub, inR, &out, ServeConfig{Probes: 8, Limiter: lim})
	}()
	send := func(line string) {
		t.Helper()
		if _, err := io.WriteString(inW, line+"\n"); err != nil {
			t.Fatalf("write %q: %v", line, err)
		}
	}

	// The first submit is acked only after it has claimed the sole
	// admission slot; its ticket never completes until we say so, so the
	// slot stays held.
	send(`{"op":"submit","tag":"first","instance":` + inst + `}`)
	first := awaitResponse(t, &out, func(r Response) bool { return r.Tag == "first" })
	if first.Code != "" || first.ID == 0 {
		t.Fatalf("first submit should have been admitted: %+v", first)
	}
	// The second, having no deadline, must shed immediately with the
	// typed overloaded code.
	send(`{"op":"submit","tag":"shed","instance":` + inst + `}`)
	shed := awaitResponse(t, &out, func(r Response) bool { return r.Tag == "shed" })
	if shed.Code != codeOverloaded {
		t.Fatalf("saturated submit: code %q, want %q (%+v)", shed.Code, codeOverloaded, shed)
	}
	// Completing the held ticket frees the slot — asynchronously, via
	// the ticket watcher — so retry until the release lands.
	close(stub.done)
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		tag := "again" + strconv.Itoa(i)
		send(`{"op":"submit","tag":"` + tag + `","instance":` + inst + `}`)
		again := awaitResponse(t, &out, func(r Response) bool { return r.Tag == tag })
		if again.Code == "" {
			break
		}
		if again.Code != codeOverloaded {
			t.Fatalf("submit after release: %+v", again)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released after ticket completion")
		}
		time.Sleep(2 * time.Millisecond)
	}
	inW.Close()
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestServeLinesQuotaByTenant(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	lim := NewLimiter(Limits{QuotaRate: 0.001, QuotaBurst: 2})
	inst := `{"m":8,"jobs":[{"type":"perfect","w":8}]}`
	lines := []string{
		`{"op":"hello","tag":"h","tenant":"acme"}`,
		`{"op":"submit","tag":"q1","instance":` + inst + `}`,
		`{"op":"submit","tag":"q2","instance":` + inst + `}`,
		`{"op":"submit","tag":"q3","instance":` + inst + `}`,
		`{"op":"shutdown","tag":"end"}`,
	}
	var out lockedBuffer
	err := ServeLines(context.Background(), svc, strings.NewReader(strings.Join(lines, "\n")+"\n"), &out, ServeConfig{Probes: 8, Limiter: lim})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	rs := decodeAll(t, out.String())
	if h := findResp(t, rs, "hello ack", func(r Response) bool { return r.Op == "hello" }); h.Tenant != "acme" {
		t.Fatalf("hello ack: %+v", h)
	}
	var admitted, shed int
	for _, r := range rs {
		if r.Op != "submit" {
			continue
		}
		switch r.Code {
		case "":
			admitted++
		case codeOverloaded:
			shed++
		default:
			t.Fatalf("unexpected submit outcome: %+v", r)
		}
	}
	// Tokens are drawn on the read loop in line order: exactly the
	// burst gets in, the overflow sheds.
	if admitted != 2 || shed != 1 {
		t.Fatalf("quota burst 2: admitted %d shed %d, want 2/1", admitted, shed)
	}
}

// --- HTTP endpoints ---

func TestServerHTTPEndpoints(t *testing.T) {
	srv := NewServer(context.Background(), ServerConfig{Shards: 2, Service: service.Config{Workers: 1}, Probes: 8})
	defer srv.Close()
	h := srv.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz on healthy fleet: %d %q", rec.Code, rec.Body.String())
	}

	// The protocol rides over POST /rpc too: one session per request.
	rpc := httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(
		`{"op":"submit","tag":"r1","instance":{"m":8,"jobs":[{"type":"perfect","w":8}]}}`+"\n"+
			`{"op":"stats","tag":"r2"}`+"\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, rpc)
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("rpc content type: %q", ct)
	}
	rs := decodeAll(t, rec.Body.String())
	sub := findResp(t, rs, "rpc submit", func(r Response) bool { return r.Op == "submit" && r.Tag == "r1" })
	if sub.Code != "" || sub.ID == 0 {
		t.Fatalf("rpc submit: %+v", sub)
	}
	res, known := srv.Router().Wait(sub.ID)
	if !known || res.Err != nil {
		t.Fatalf("rpc-submitted ticket: known=%v err=%v", known, res.Err)
	}

	// Stats aggregates and itemizes per shard.
	var stats struct {
		Stats  service.Stats   `json:"stats"`
		Shards []service.Stats `json:"shards"`
		Alive  []bool          `json:"alive"`
	}
	if rec := get("/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	} else if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if len(stats.Shards) != 2 || len(stats.Alive) != 2 || stats.Stats.Submitted != 1 {
		t.Fatalf("stats payload: %+v", stats)
	}

	// GET /metrics serves the obs registry in Prometheus text format
	// with the scrape-time gauges refreshed from the router (ISSUE 9).
	rec = get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type: %q", ct)
	}
	body := rec.Body.String()
	if n := strings.Count(body, "# TYPE "); n < 15 {
		t.Fatalf("metrics exposes %d families, want ≥ 15:\n%s", n, body)
	}
	for _, want := range []string{"sched_calls_total", "wire_ops_total{op=", "service_pending 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body lacks %q", want)
		}
	}

	// A killed shard degrades health with its id in the body.
	srv.Router().Kill(1)
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "dead_shards") {
		t.Fatalf("healthz on degraded fleet: %d %q", rec.Code, rec.Body.String())
	}
}

// --- Disconnect and idle-session cleanup (the leak fix) ---

// TestAbruptDisconnectReleasesOnlineSessions pins the leak fix: a
// client that opens online sessions and vanishes without draining must
// leave online_sessions at zero once the server notices the
// disconnect.
func TestAbruptDisconnectReleasesOnlineSessions(t *testing.T) {
	srv, addr, errc := startTestServer(t, ServerConfig{Shards: 2, Service: service.Config{Workers: 1}, Probes: 8})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wc, err := Dial(ctx, addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i := 0; i < 4; i++ {
		id, err := wc.OpenOnline(ctx, online.Config{M: 16, Eps: 0.5})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if _, err := wc.Arrive(ctx, id, online.Arrival{T: 0, Job: moldable.PerfectSpeedup{W: 4 + float64(i)}}); err != nil {
			t.Fatalf("arrive %d: %v", i, err)
		}
	}
	if got := srv.Router().Stats().OnlineSessions; got != 4 {
		t.Fatalf("before disconnect: %d open sessions, want 4", got)
	}

	wc.Close() // abrupt: no drains, no shutdown

	deadline := time.Now().Add(5 * time.Second)
	for srv.Router().Stats().OnlineSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("online sessions leaked after disconnect: %d still open",
				srv.Router().Stats().OnlineSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv.Close()
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestIdleSessionReaper pins the backstop for owners that vanish while
// their connection stays up (a wedged peer, an embedder serving with
// KeepSessions): sessions idle past the horizon are collected, fresh
// ones are not.
func TestIdleSessionReaper(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	id, err := svc.OpenOnline(online.Config{M: 16, Eps: 0.5})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := svc.OnlineArrive(context.Background(), id, online.Arrival{T: 0, Job: moldable.PerfectSpeedup{W: 8}}); err != nil {
		t.Fatalf("arrive: %v", err)
	}
	// Fresh activity is protected...
	if n := svc.ReapOnlineIdle(time.Hour); n != 0 {
		t.Fatalf("reaped %d fresh sessions", n)
	}
	// ...idle sessions are not.
	time.Sleep(10 * time.Millisecond)
	if n := svc.ReapOnlineIdle(time.Millisecond); n != 1 {
		t.Fatalf("reaped %d idle sessions, want 1", n)
	}
	if st := svc.Stats(); st.OnlineSessions != 0 {
		t.Fatalf("after reap: %d sessions open", st.OnlineSessions)
	}
	// The reaped session is gone, typed.
	if _, err := svc.OnlineTrace(id); !errors.Is(err, service.ErrUnknownSession) {
		t.Fatalf("trace of reaped session: %v", err)
	}
}

// --- helpers ---

// lockedBuffer is a mutex-guarded output sink: ServeLines writes from
// handler goroutines while tests read concurrently.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder //sched:guardedby mu
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// awaitResponse polls the buffer until a response matches pred.
func awaitResponse(t *testing.T, out *lockedBuffer, pred func(Response) bool) Response {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, r := range decodeAll(t, out.String()) {
			if pred(r) {
				return r
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no matching response in %q", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func decodeAll(t *testing.T, s string) []Response {
	t.Helper()
	var rs []Response
	dec := json.NewDecoder(strings.NewReader(s))
	for dec.More() {
		var r Response
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decoding %q: %v", s, err)
		}
		rs = append(rs, r)
	}
	return rs
}

func findResp(t *testing.T, rs []Response, what string, pred func(Response) bool) Response {
	t.Helper()
	for _, r := range rs {
		if pred(r) {
			return r
		}
	}
	t.Fatalf("no %s response in %+v", what, rs)
	return Response{}
}
