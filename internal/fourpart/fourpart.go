// Package fourpart implements the 4-Partition problem and the reduction
// of Jansen & Land §2 (Theorem 1): scheduling monotone moldable jobs
// with a target makespan is strongly NP-complete, via jobs with
// processing times t_ji(k) = m·a_i − k + 1, which are strictly monotone.
package fourpart

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/moldable"
)

// Instance of 4-Partition: 4n natural numbers and a target B; the
// question is whether A can be split into n quadruples each summing
// to B. The problem stays strongly NP-hard when every a_i lies strictly
// between B/5 and B/3 (then every group of sum B has exactly 4 elements).
type Instance struct {
	A []int
	B int
}

// N returns the number of quadruples, len(A)/4.
func (in *Instance) N() int { return len(in.A) / 4 }

// Validate checks the structural requirements of the reduction.
func (in *Instance) Validate() error {
	if len(in.A) == 0 || len(in.A)%4 != 0 {
		return fmt.Errorf("fourpart: |A|=%d is not a positive multiple of 4", len(in.A))
	}
	sum := 0
	for _, a := range in.A {
		if a <= 0 {
			return errors.New("fourpart: numbers must be positive")
		}
		sum += a
	}
	if sum != in.N()*in.B {
		return fmt.Errorf("fourpart: ΣA=%d ≠ n·B=%d (trivial no-instance)", sum, in.N()*in.B)
	}
	return nil
}

// Solve decides the instance exactly by backtracking: repeatedly take
// the largest unused number and search for three more completing a
// quadruple of sum B. Exponential in general; intended for the small
// instances of the reduction experiments. Returns the groups (indices
// into A) when solvable.
func Solve(in *Instance) ([][4]int, bool) {
	if err := in.Validate(); err != nil {
		return nil, false
	}
	n := in.N()
	idx := make([]int, len(in.A))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return in.A[idx[x]] > in.A[idx[y]] })
	used := make([]bool, len(in.A))
	var groups [][4]int
	var rec func(done int) bool
	rec = func(done int) bool {
		if done == n {
			return true
		}
		// first unused (largest remaining) number anchors the group,
		// eliminating permutation symmetry between groups
		first := -1
		for _, i := range idx {
			if !used[i] {
				first = i
				break
			}
		}
		used[first] = true
		target := in.B - in.A[first]
		// choose three more, positions increasing in the sorted order
		var pick func(start, left, rem int, chosen *[4]int) bool
		pick = func(start, left, rem int, chosen *[4]int) bool {
			if left == 0 {
				if rem != 0 {
					return false
				}
				chosen[0] = first
				groups = append(groups, *chosen)
				if rec(done + 1) {
					return true
				}
				groups = groups[:len(groups)-1]
				return false
			}
			prev := -1 // skip equal values retried at the same position
			for s := start; s < len(idx); s++ {
				i := idx[s]
				if used[i] || in.A[i] > rem || in.A[i] == prev {
					continue
				}
				// prune: the remaining left−1 numbers are each ≤ A[i]
				// (descending order), so rem−A[i] must be coverable
				if rem-in.A[i] > (left-1)*in.A[i] {
					continue
				}
				prev = in.A[i]
				used[i] = true
				chosen[left] = i
				if pick(s+1, left-1, rem-in.A[i], chosen) {
					return true
				}
				used[i] = false
			}
			return false
		}
		var chosen [4]int
		if pick(0, 3, target, &chosen) {
			return true
		}
		used[first] = false
		return false
	}
	if rec(0) {
		return groups, true
	}
	return nil, false
}

// ReductionJob is the moldable job of the reduction: t(k) = MA − k + 1
// with MA = m·a_i. Time is strictly decreasing and work strictly
// increasing (Eq. 1), so the job is strictly monotone.
type ReductionJob struct {
	MA int // m·a_i
}

// Time returns MA − k + 1.
func (r ReductionJob) Time(k int) moldable.Time { return moldable.Time(r.MA - k + 1) }

// Reduce builds the scheduling instance of Theorem 1: m = n machines,
// one job per number with t_ji(k) = m·a_i − k + 1, and target makespan
// d = n·B. Numbers are scaled so that a_i ≥ 2 (the proof needs
// m·a_i ≥ 2m). A schedule of makespan ≤ d exists iff the 4-Partition
// instance is a yes-instance.
func Reduce(fp *Instance) (*moldable.Instance, moldable.Time, error) {
	if err := fp.Validate(); err != nil {
		return nil, 0, err
	}
	scale := 1
	for _, a := range fp.A {
		if a < 2 { // a_i ≥ 1, so doubling suffices for a_i·scale ≥ 2
			scale = 2
			break
		}
	}
	n := fp.N()
	in := &moldable.Instance{M: n}
	for _, a := range fp.A {
		in.Jobs = append(in.Jobs, ReductionJob{MA: n * a * scale})
	}
	d := moldable.Time(n * fp.B * scale)
	return in, d, nil
}

// YesInstance generates a solvable instance with n quadruples, every
// number strictly between B/5 and B/3. The construction samples two
// numbers per quadruple and completes the remaining two to sum B.
func YesInstance(n int, seed uint64) *Instance {
	rng := rand.New(rand.NewPCG(seed, 0xa5a5a5a5deadbeef))
	B := 1000 + 4*rng.IntN(500)
	lo, hi := B/5+1, B/3-1
	var A []int
	for g := 0; g < n; g++ {
		for {
			x1 := lo + rng.IntN(hi-lo+1)
			x2 := lo + rng.IntN(hi-lo+1)
			rest := B - x1 - x2
			// need x3 ∈ [max(lo, rest−hi), min(hi, rest−lo)]
			l3 := max(lo, rest-hi)
			h3 := min(hi, rest-lo)
			if l3 > h3 {
				continue
			}
			x3 := l3 + rng.IntN(h3-l3+1)
			x4 := rest - x3
			A = append(A, x1, x2, x3, x4)
			break
		}
	}
	rng.Shuffle(len(A), func(i, j int) { A[i], A[j] = A[j], A[i] })
	return &Instance{A: A, B: B}
}

// NoInstance searches for an unsolvable instance with the structural
// constraints intact (Σ = nB, numbers in (B/5, B/3)), verifying with the
// exact solver. Returns nil if none is found within the attempt budget
// (unlikely for n ≥ 2).
func NoInstance(n int, seed uint64, attempts int) *Instance {
	rng := rand.New(rand.NewPCG(seed, 0x0123456789abcdef))
	for a := 0; a < attempts; a++ {
		inst := YesInstance(n, rng.Uint64())
		// perturb: move mass between numbers of different quadruples
		// while keeping the total and the range constraints
		lo, hi := inst.B/5+1, inst.B/3-1
		for t := 0; t < 8; t++ {
			i, j := rng.IntN(len(inst.A)), rng.IntN(len(inst.A))
			if i == j {
				continue
			}
			if inst.A[i]+1 <= hi && inst.A[j]-1 >= lo {
				inst.A[i]++
				inst.A[j]--
			}
		}
		if err := inst.Validate(); err != nil {
			continue
		}
		if _, yes := Solve(inst); !yes {
			return inst
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
