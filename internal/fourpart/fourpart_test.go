package fourpart

import (
	"testing"

	"repro/internal/moldable"
	"repro/internal/schedule"
)

func TestYesInstanceSolvable(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		for _, n := range []int{1, 2, 3, 5} {
			inst := YesInstance(n, seed)
			if err := inst.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			groups, ok := Solve(inst)
			if !ok {
				t.Fatalf("n=%d seed=%d: yes-instance not solved", n, seed)
			}
			if len(groups) != n {
				t.Fatalf("n=%d: %d groups", n, len(groups))
			}
			used := map[int]bool{}
			for _, g := range groups {
				sum := 0
				for _, i := range g {
					if used[i] {
						t.Fatal("index reused across groups")
					}
					used[i] = true
					sum += inst.A[i]
				}
				if sum != inst.B {
					t.Fatalf("group sums to %d, want B=%d", sum, inst.B)
				}
			}
		}
	}
}

func TestNoInstanceUnsolvable(t *testing.T) {
	inst := NoInstance(2, 7, 200)
	if inst == nil {
		t.Skip("no no-instance found in budget (extremely unlikely)")
	}
	if _, ok := Solve(inst); ok {
		t.Fatal("NoInstance returned a solvable instance")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (&Instance{A: []int{1, 2, 3}, B: 6}).Validate(); err == nil {
		t.Error("|A| not multiple of 4 accepted")
	}
	if err := (&Instance{A: []int{1, 2, 3, 7}, B: 6}).Validate(); err == nil {
		t.Error("ΣA ≠ nB accepted")
	}
	if err := (&Instance{A: []int{-1, 2, 3, 2}, B: 6}).Validate(); err == nil {
		t.Error("negative number accepted")
	}
}

// TestReductionJobStrictlyMonotone verifies Eq. (1): time strictly
// decreasing, work strictly increasing.
func TestReductionJobStrictlyMonotone(t *testing.T) {
	inst := YesInstance(3, 1)
	sched, d, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	for ji, j := range sched.Jobs {
		for k := 1; k < sched.M; k++ {
			if !(j.Time(k+1) < j.Time(k)) {
				t.Fatalf("job %d: time not strictly decreasing at k=%d", ji, k)
			}
			w1 := moldable.Work(j, k)
			w2 := moldable.Work(j, k+1)
			if !(w2 > w1) {
				t.Fatalf("job %d: work not strictly increasing at k=%d (%v vs %v)", ji, k, w1, w2)
			}
		}
	}
}

// TestReductionYesDirection: from a 4-Partition solution, the Fig. 1
// schedule (every job on one processor, each machine one quadruple) is
// feasible with makespan exactly d.
func TestReductionYesDirection(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		inst := YesInstance(3, seed)
		groups, ok := Solve(inst)
		if !ok {
			t.Fatal("yes-instance unsolvable")
		}
		sin, d, err := Reduce(inst)
		if err != nil {
			t.Fatal(err)
		}
		s := schedule.New(sin.M)
		for machine, g := range groups {
			var at moldable.Time
			for _, i := range g {
				dur := sin.Jobs[i].Time(1)
				s.AddAt(i, 1, at, dur, machine)
				at += dur
			}
			if at != d {
				t.Fatalf("machine %d load %v ≠ d=%v (Fig. 1 structure violated)", machine, at, d)
			}
		}
		if err := schedule.Validate(sin, s, schedule.Options{RequireConcrete: true}); err != nil {
			t.Fatal(err)
		}
		if mk := s.Makespan(); mk != d {
			t.Fatalf("makespan %v ≠ d = %v", mk, d)
		}
	}
}

// TestReductionNoDirection: for a no-instance, no schedule with makespan
// ≤ d exists. Argument from the paper: total work at one processor per
// job is exactly m·d and work strictly grows with processors, so any
// d-schedule uses exactly one processor per job and fills every machine
// exactly — i.e. it induces a 4-Partition solution. We verify the work
// identity and that the solver says no.
func TestReductionNoDirection(t *testing.T) {
	inst := NoInstance(2, 3, 300)
	if inst == nil {
		t.Skip("no no-instance found")
	}
	sin, d, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	var w moldable.Time
	for _, j := range sin.Jobs {
		w += j.Time(1) // work on one processor
	}
	if want := moldable.Time(sin.M) * d; w != want {
		t.Fatalf("Σ w_j(1) = %v ≠ m·d = %v — reduction arithmetic broken", w, want)
	}
	if _, ok := Solve(inst); ok {
		t.Fatal("instance is solvable after all")
	}
	// Consistency: the dual algorithms must not find a schedule of
	// makespan ≤ d either (they could only if one existed).
	// (3/2-dual accepting d would only prove makespan ≤ 3d/2, so instead
	// we check the exact all-ones allotment bin-packing equivalence.)
	if packsIntoMachines(sin, d) {
		t.Fatal("one-processor packing exists for a no-instance")
	}
}

// packsIntoMachines does exact first-fit search: can jobs at one
// processor each be packed into M machines with load ≤ d?
func packsIntoMachines(in *moldable.Instance, d moldable.Time) bool {
	loads := make([]moldable.Time, in.M)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == in.N() {
			return true
		}
		dur := in.Jobs[i].Time(1)
		seen := map[moldable.Time]bool{}
		for q := range loads {
			if loads[q]+dur <= d+1e-9 && !seen[loads[q]] {
				seen[loads[q]] = true
				loads[q] += dur
				if rec(i + 1) {
					return true
				}
				loads[q] -= dur
			}
		}
		return false
	}
	return rec(0)
}

// TestReductionRoundTrip: solving the reduced instance with the MRT dual
// at d accepts yes-instances (the optimum IS d).
func TestReductionScaling(t *testing.T) {
	inst := &Instance{A: []int{1, 1, 1, 1}, B: 4}
	sin, d, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	// scaled so a_i ≥ 2: smallest processing time m·a_i ≥ 2m
	for i, j := range sin.Jobs {
		if j.Time(1) < moldable.Time(2*sin.M) {
			t.Errorf("job %d: t(1)=%v < 2m", i, j.Time(1))
		}
	}
	if d != moldable.Time(1*4*2) { // n=1, B=4, scale=2
		t.Errorf("d = %v, want 8", d)
	}
}
