// Package repro reproduces "Scheduling Monotone Moldable Jobs in Linear
// Time" (Klaus Jansen & Felix Land, IPDPS 2018, arXiv:1711.00103): a
// complete Go implementation of the paper's algorithms — the FPTAS for
// large machine counts (Theorem 2), the three (3/2+ε)-approximation
// algorithms with running times polylogarithmic in the number of
// machines (Theorem 3 / Table 1), the 4-Partition NP-completeness
// reduction (Theorem 1) — together with every substrate they rely on:
// the moldable-job oracle model, the Ludwig–Tiwari estimator, list
// scheduling, the Mounié–Rapine–Trystram shelf machinery, and the
// knapsack-with-compressible-items toolbox (Algorithm 2 / Theorem 15).
//
// The root package is a thin facade; the implementation lives under
// internal/ (see DESIGN.md §1 for the system inventory):
//
//	in := &moldable.Instance{M: 1 << 20, Jobs: []moldable.Job{
//	    moldable.Amdahl{Seq: 2, Par: 98},
//	    moldable.PerfectSpeedup{W: 512},
//	}}
//	s, rep, err := repro.Schedule(in, repro.Options{Eps: 0.1})
//
// Entry points:
//
//	Schedule     — algorithm selection per core.Options (Auto by default)
//	ScheduleMany — batches of independent instances on a worker pool
//	TwoApprox    — the classical Ludwig–Tiwari 2-approximation
//	Estimate     — ω with ω ≤ OPT ≤ 2ω in O(n log²m)
//
// Long-running callers that see repeated or similar instances should
// use internal/service (exposed as the cmd/moldschedd daemon), which
// adds result caching and oracle memoization; see DESIGN.md §5.
package repro

import (
	"repro/internal/core"
	"repro/internal/lt"
	"repro/internal/moldable"
	"repro/internal/schedule"
)

// Re-exported types, so basic use needs only this package plus
// internal/moldable for job definitions.
type (
	// Options configures Schedule; see core.Options.
	Options = core.Options
	// Report describes a scheduling run; see core.Report.
	Report = core.Report
	// Algorithm selects the algorithm; see the constants below.
	Algorithm = core.Algorithm
	// Schedule is a produced schedule; see schedule.Schedule.
	ScheduleResult = schedule.Schedule
)

// Algorithm constants.
const (
	Auto   = core.Auto
	LT2    = core.LT2
	MRT    = core.MRT
	Alg1   = core.Alg1
	Alg3   = core.Alg3
	Linear = core.Linear
	FPTAS  = core.FPTAS
)

// BatchResult is the outcome of one instance in a batch; see
// core.BatchResult.
type BatchResult = core.BatchResult

// Schedule solves the instance; see core.Schedule.
func Schedule(in *moldable.Instance, opt Options) (*schedule.Schedule, *Report, error) {
	return core.Schedule(in, opt)
}

// ScheduleMany schedules independent instances on a sharded worker
// pool; see core.ScheduleMany.
func ScheduleMany(ins []*moldable.Instance, opt Options, workers int) []BatchResult {
	return core.ScheduleMany(ins, opt, workers)
}

// PTAS is the §3.2 router; see core.PTAS.
func PTAS(in *moldable.Instance, eps float64) (*schedule.Schedule, *Report, error) {
	return core.PTAS(in, eps)
}

// TwoApprox is the classical 2-approximation (Ludwig–Tiwari estimator +
// list scheduling).
func TwoApprox(in *moldable.Instance) (*schedule.Schedule, lt.Result) {
	return lt.TwoApprox(in)
}

// Estimate computes ω with ω ≤ OPT ≤ 2ω in time O(n log²m).
func Estimate(in *moldable.Instance) lt.Result {
	return lt.Estimate(in)
}

// Validate checks a schedule against its instance.
func Validate(in *moldable.Instance, s *schedule.Schedule) error {
	return schedule.Validate(in, s, schedule.Options{})
}
