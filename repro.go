// Package repro reproduces "Scheduling Monotone Moldable Jobs in Linear
// Time" (Klaus Jansen & Felix Land, IPDPS 2018, arXiv:1711.00103): a
// complete Go implementation of the paper's algorithms — the FPTAS for
// large machine counts (Theorem 2), the three (3/2+ε)-approximation
// algorithms with running times polylogarithmic in the number of
// machines (Theorem 3 / Table 1), the 4-Partition NP-completeness
// reduction (Theorem 1) — together with every substrate they rely on:
// the moldable-job oracle model, the Ludwig–Tiwari estimator, list
// scheduling, the Mounié–Rapine–Trystram shelf machinery, and the
// knapsack-with-compressible-items toolbox (Algorithm 2 / Theorem 15).
//
// The root package is a thin facade; the implementation lives under
// internal/ (see DESIGN.md §1 for the system inventory).
//
// # Entry point: the Client
//
// All scheduling goes through a context-first Client, a handle over
// the serving stack (worker pool, result cache, oracle memoization):
//
//	c := repro.New(repro.WithEps(0.1))
//	defer c.Close()
//
//	in := &moldable.Instance{M: 1 << 20, Jobs: []moldable.Job{
//	    moldable.Amdahl{Seq: 2, Par: 98},
//	    moldable.PerfectSpeedup{W: 512},
//	}}
//	s, rep, err := c.Schedule(ctx, in)
//
// Methods: Schedule (one instance), ScheduleStream (a batch, results
// streamed in completion order as an iter.Seq2), RunOnline (a
// timestamped arrival stream replayed through the event-driven online
// runtime — see internal/online and DESIGN.md §7), Estimate (ω with
// ω ≤ OPT ≤ 2ω), Validate (instance preconditions), ValidateSchedule.
// Cancellation and deadlines on ctx reach all the way into the
// algorithms' dual-search probe loops; interrupted work returns errors
// matching ErrCanceled. Errors are typed (ErrNotMonotone, ErrRegime,
// ErrBadEps, ErrCanceled) and errors.Is/As-able.
//
// The pre-Client free functions (Schedule, ScheduleMany, TwoApprox,
// Estimate, Validate) remain as deprecated shims; see each for its
// replacement and README.md for the migration table.
package repro

import (
	"repro/internal/core"
	"repro/internal/lt"
	"repro/internal/moldable"
	"repro/internal/schedule"
)

// Re-exported types, so basic use needs only this package plus
// internal/moldable for job definitions.
type (
	// Options configures the deprecated free functions; see
	// core.Options. New code passes WithAlgorithm/WithEps/WithValidation
	// options to the Client instead.
	Options = core.Options
	// Report describes a scheduling run; see core.Report.
	Report = core.Report
	// Algorithm selects the algorithm; see the constants below.
	Algorithm = core.Algorithm
	// ScheduleResult is a produced schedule; see schedule.Schedule.
	ScheduleResult = schedule.Schedule
)

// Algorithm constants.
const (
	Auto   = core.Auto
	LT2    = core.LT2
	MRT    = core.MRT
	Alg1   = core.Alg1
	Alg3   = core.Alg3
	Linear = core.Linear
	FPTAS  = core.FPTAS
	Conv   = core.Conv
)

// BatchResult is the outcome of one instance in a batch; see
// core.BatchResult.
type BatchResult = core.BatchResult

// Schedule solves the instance; see core.Schedule.
//
// Deprecated: use Client.Schedule, which adds cancellation, result
// caching, and oracle memoization:
//
//	c := repro.New()
//	defer c.Close()
//	s, rep, err := c.Schedule(ctx, in, repro.WithEps(opt.Eps))
func Schedule(in *moldable.Instance, opt Options) (*schedule.Schedule, *Report, error) {
	return core.Schedule(in, opt)
}

// ScheduleMany schedules independent instances on a sharded worker
// pool and returns when every result is ready; see core.ScheduleMany.
// workers ≤ 0 selects runtime.GOMAXPROCS(0).
//
// Deprecated: use Client.ScheduleStream, which streams results in
// completion order instead of barriering, and observes ctx:
//
//	c := repro.New(repro.WithWorkers(workers))
//	defer c.Close()
//	for i, r := range c.ScheduleStream(ctx, ins) { ... }
func ScheduleMany(ins []*moldable.Instance, opt Options, workers int) []BatchResult {
	return core.ScheduleMany(ins, opt, workers)
}

// PTAS is the §3.2 router; see core.PTAS. It is a specialist entry
// point (certifies (1+ε) or returns ErrPTASRegime, matching ErrRegime)
// and has no Client equivalent.
func PTAS(in *moldable.Instance, eps float64) (*schedule.Schedule, *Report, error) {
	return core.PTAS(in, eps)
}

// TwoApprox is the classical 2-approximation (Ludwig–Tiwari estimator +
// list scheduling).
//
// Deprecated: use Client.Schedule with WithAlgorithm(LT2).
func TwoApprox(in *moldable.Instance) (*schedule.Schedule, lt.Result) {
	return lt.TwoApprox(in)
}

// Estimate computes ω with ω ≤ OPT ≤ 2ω in time O(n log²m).
//
// Deprecated: use Client.Estimate, which observes ctx.
func Estimate(in *moldable.Instance) lt.Result {
	return lt.Estimate(in)
}

// Validate checks a schedule against its instance.
//
// Deprecated: use Client.ValidateSchedule (for schedules) or
// Client.Validate (for instance preconditions).
func Validate(in *moldable.Instance, s *schedule.Schedule) error {
	return schedule.Validate(in, s, schedule.Options{})
}
