package repro_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every examples/ program with a 5s
// execution deadline, so the doc-adjacent walkthroughs stay working:
// `go build ./...` compiles them but nothing else ever executed them,
// which is how example rot starts. Skipped under -short (CI runs the
// full suite).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are not -short material")
	}
	mains, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no examples found; glob moved?")
	}
	for _, main := range mains {
		dir := filepath.Dir(main)
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			// Build without a deadline (cold build caches are slow);
			// the 5s budget is for execution, where a hang would mean
			// a broken example.
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building %s: %v\n%s", dir, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			out, err := run.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("%s did not finish within 5s\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("%s exited with %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output; examples must demonstrate something", name)
			}
		})
	}
}
