// Command moldsched schedules a moldable-job instance (JSON, see
// internal/moldable's wire format) and prints the schedule, a report,
// and optionally an ASCII Gantt chart.
//
// Usage:
//
//	moldsched -in instance.json -algo linear -eps 0.1 -gantt
//	geninstance -n 20 -m 64 | moldsched -algo auto
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/scherr"
	"repro/internal/sim"
)

func main() {
	var (
		inPath  = flag.String("in", "-", "instance JSON path ('-' for stdin)")
		algoStr = flag.String("algo", "auto", "algorithm: auto|lt2|mrt|alg1|alg3|linear|fptas|conv")
		eps     = flag.Float64("eps", 0.1, "accuracy ε ∈ (0,1]")
		gantt   = flag.Bool("gantt", false, "render an ASCII Gantt chart")
		width   = flag.Int("width", 100, "gantt width in characters")
		quiet   = flag.Bool("q", false, "only print the makespan")
		cert    = flag.Bool("cert", false, "emit and re-verify the §2 certificate (allotment + order)")
		simFlag = flag.Bool("sim", false, "execute the schedule on the discrete-event simulator")
		svgPath = flag.String("svg", "", "write the schedule as SVG to this path")
		trace   = flag.Bool("trace", false, "print the sampled scheduling decision traces after the run (docs/OBSERVABILITY.md)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("moldsched: ")

	// ^C cancels the run cleanly: the dual search stops at its next
	// probe and the process reports the interruption instead of dying
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Tag the run so -trace can show which decisions this invocation
	// drove (the ring is process-global; the id separates them).
	ctx = obs.WithTraceID(ctx, "cli")

	// Parse the algorithm before reading the instance: a typo in -algo
	// (the error enumerates the valid names, case-insensitively) should
	// not cost the user a full instance upload from stdin.
	algo, err := core.ParseAlgorithm(*algoStr)
	if err != nil {
		log.Fatalf("-algo: %v", err)
	}

	var in *moldable.Instance
	if *inPath == "-" {
		in, err = moldable.ReadInstance(os.Stdin)
	} else {
		f, ferr := os.Open(*inPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		in, err = moldable.ReadInstance(f)
	}
	if err != nil {
		log.Fatalf("reading instance: %v", err)
	}
	if err := in.ValidateCtx(ctx, 256); err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			log.Fatal("interrupted")
		}
		log.Fatalf("invalid instance: %v", err)
	}
	s, rep, err := core.ScheduleCtx(ctx, in, core.Options{Algorithm: algo, Eps: *eps, Validate: true})
	if err != nil {
		if errors.Is(err, scherr.ErrCanceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	if *quiet {
		fmt.Printf("%g\n", s.Makespan())
		return
	}
	fmt.Printf("instance:   %s\n", moldable.Describe(in))
	fmt.Printf("algorithm:  %s (ε=%g, guarantee %.4g)\n", rep.Algorithm, rep.Eps, rep.Guarantee)
	fmt.Printf("makespan:   %.6g\n", rep.Makespan)
	fmt.Printf("lowerbound: %.6g  (ratio ≤ %.4f)\n", rep.LowerBound, rep.Ratio)
	fmt.Printf("dual iters: %d, elapsed %v\n", rep.Iterations, rep.Elapsed)
	if *gantt {
		fmt.Println()
		fmt.Print(schedule.Gantt(s, *width))
	}
	if *cert {
		c, err := certify.FromSchedule(s, in.N())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := certify.Verify(in, s.Makespan(), c); err != nil {
			log.Fatalf("certificate failed to verify: %v", err)
		}
		fmt.Printf("certificate (%d bits): allot=%v order=%v — verified ✓\n",
			certify.Bits(in.N(), in.M), c.Allot, c.Order)
	}
	if *simFlag {
		met, err := sim.Run(in, s, sim.Options{Dispatch: sim.Static})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated:  makespan=%.6g utilization=%.3f peak=%d/%d\n",
			met.Makespan, met.Utilization, met.PeakProcs, in.M)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := schedule.SVG(f, s, 1000, 500); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg:        %s\n", *svgPath)
	}
	if *trace {
		printTraces()
	}
}

// printTraces renders the sampled decision traces of this process —
// every ScheduleCtx above records into the obs ring — oldest first.
func printTraces() {
	evs := obs.SnapshotTraces(32)
	fmt.Printf("\ndecision traces (%d sampled, oldest first):\n", len(evs))
	for _, e := range evs {
		line := fmt.Sprintf("  [%s/%s] algo=%s n=%d m=%d eps=%g probes=%d elapsed=%v makespan=%.6g omega=%.6g",
			e.Source, e.TID, e.Algo, e.N, e.M, e.Eps, e.Probes, time.Duration(e.Elapsed), e.Makespan, e.Omega)
		if e.Code != "" {
			line += " code=" + e.Code
		}
		fmt.Println(line)
	}
}
