// Command schedlint runs the repo's custom static-analysis suite (the
// analyzers in internal/analysis) over the given package patterns and
// exits non-zero if any diagnostic survives suppression. It is the
// compile-time enforcement arm of the invariant catalog in DESIGN.md
// §9: zero-allocation hot paths, epsilon-guarded float→int rounding,
// context propagation, wire-protocol/doc coherence, Reset completeness,
// package documentation, scratch-buffer ownership (scratchown), mutex
// discipline on //sched:guardedby fields (lockguard), goroutine join
// paths (goroleak), whole-module lock-ordering cycles (lockorder),
// sync/atomic access consistency (atomicmix), and channel ownership
// (chanrule).
//
// Usage:
//
//	go run ./cmd/schedlint ./...
//	go run ./cmd/schedlint -run hotalloc,fpconv ./internal/fast
//
// Findings print as file:line:col: message [analyzer], one per line;
// -json switches to one JSON object per line
// ({"file","line","col","analyzer","message"}) for toolchain
// integration — CI pairs the default format with a GitHub Actions
// problem matcher (.github/schedlint-problem-matcher.json) so findings
// annotate the diff. Suppress an individual finding with an inline
// directive carrying a justification:
//
//	//schedlint:ignore hotalloc cold fallback path, caller passed nil scratch
//
// Unused or malformed directives are themselves diagnostics, so stale
// suppressions cannot accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	listFlag := flag.Bool("list", false, "list available analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit one JSON diagnostic per line instead of the human format")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-run a,b] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *runFlag != "" {
		sel, unknown := analysis.ByName(strings.Split(*runFlag, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "schedlint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonFlag {
			// One object per line: trivially greppable, and the shape
			// GitHub's problem-matcher JSON schema can also consume.
			enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			continue
		}
		fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
