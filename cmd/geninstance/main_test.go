package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/online"
)

// TestArrivalTraceRoundTrip builds the binary and round-trips its
// -arrivals output through the trace parser in internal/online — the
// flag-plumbing complement of the package-level round-trip tests.
func TestArrivalTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("binary round-trip is not -short material")
	}
	bin := filepath.Join(t.TempDir(), "geninstance")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	for _, process := range []string{"poisson", "bursty"} {
		cmd := exec.Command(bin, "-arrivals", process, "-rate", "4", "-n", "100", "-seed", "9")
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		trace, err := online.ReadTrace(&stdout)
		if err != nil {
			t.Fatalf("%s: parsing emitted trace: %v", process, err)
		}
		if len(trace) != 100 {
			t.Fatalf("%s: %d arrivals, want 100", process, len(trace))
		}
		// Equal to the in-process generator with the same parameters:
		// the binary adds flags, not semantics.
		want, err := online.Generate(online.TraceConfig{N: 100, Seed: 9, Rate: 4,
			Process: map[string]online.Process{"poisson": online.Poisson, "bursty": online.Bursty}[process]})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if trace[i].T != want[i].T {
				t.Fatalf("%s: arrival %d at %g, generator says %g", process, i, trace[i].T, want[i].T)
			}
		}
	}
	// -horizon truncates.
	cmd := exec.Command(bin, "-arrivals", "poisson", "-rate", "4", "-n", "1000", "-horizon", "10")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatal(err)
	}
	trace, err := online.ReadTrace(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) >= 1000 || trace[len(trace)-1].T > 10 {
		t.Fatalf("horizon ignored: %d arrivals, last at %g", len(trace), trace[len(trace)-1].T)
	}
}
