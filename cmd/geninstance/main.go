// Command geninstance generates synthetic moldable workloads as JSON.
//
// Usage:
//
//	geninstance -n 50 -m 1024 -seed 7 > instance.json
//	geninstance -planted -m 64 -d 100 -n 30 > planted.json   # OPT = d
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/moldable"
)

func main() {
	var (
		n       = flag.Int("n", 20, "number of jobs")
		m       = flag.Int("m", 64, "number of processors")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		planted = flag.Bool("planted", false, "planted-optimum instance (perfect-speedup jobs)")
		d       = flag.Float64("d", 100, "planted optimal makespan")
		preset  = flag.String("preset", "", "workload preset: mixed|capability|capacity|amdahl|embarrassing|serialfarm")
		amdahl  = flag.Float64("amdahl", 0, "mix weight: Amdahl jobs")
		power   = flag.Float64("power", 0, "mix weight: power-law jobs")
		comm    = flag.Float64("comm", 0, "mix weight: communication-overhead jobs")
		seq     = flag.Float64("seq", 0, "mix weight: sequential jobs")
		perfect = flag.Float64("perfect", 0, "mix weight: perfect-speedup jobs")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("geninstance: ")

	var in *moldable.Instance
	switch {
	case *planted:
		pl := moldable.Planted(moldable.PlantedConfig{M: *m, D: *d, Seed: *seed, MaxJobs: *n})
		in = pl.Instance
		fmt.Fprintf(os.Stderr, "planted optimum: %g (%d jobs)\n", pl.OPT, in.N())
	case *preset != "":
		cfg, err := moldable.Preset(*preset)
		if err != nil {
			log.Fatal(err)
		}
		cfg.N, cfg.M, cfg.Seed = *n, *m, *seed
		in = moldable.Random(cfg)
		fmt.Fprintf(os.Stderr, "%s\n", moldable.Summarize(in))
	default:
		in = moldable.Random(moldable.GenConfig{
			N: *n, M: *m, Seed: *seed,
			Amdahl: *amdahl, Power: *power, Comm: *comm, Sequential: *seq, Perfect: *perfect,
		})
	}
	if err := moldable.WriteInstance(os.Stdout, in); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
