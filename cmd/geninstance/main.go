// Command geninstance generates synthetic moldable workloads as JSON.
//
// Usage:
//
//	geninstance -n 50 -m 1024 -seed 7 > instance.json
//	geninstance -planted -m 64 -d 100 -n 30 > planted.json   # OPT = d
//
// With -arrivals it emits a JSON-lines arrival trace for the online
// runtime (internal/online; one {"t":...,"job":{...}} object per line)
// instead of an instance:
//
//	geninstance -arrivals poisson -rate 4 -n 4096 > trace.jsonl
//	geninstance -arrivals bursty -rate 4 -burst 8 -horizon 500 -n 4096 > trace.jsonl
//
// The trace carries no machine size: m belongs to where the trace is
// replayed (Client.RunOnline's WithMachines, moldschedd's open_online).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/moldable"
	"repro/internal/online"
)

func main() {
	var (
		n       = flag.Int("n", 20, "number of jobs")
		m       = flag.Int("m", 64, "number of processors")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		planted = flag.Bool("planted", false, "planted-optimum instance (perfect-speedup jobs)")
		d       = flag.Float64("d", 100, "planted optimal makespan")
		preset  = flag.String("preset", "", "workload preset: mixed|capability|capacity|amdahl|embarrassing|serialfarm")
		amdahl  = flag.Float64("amdahl", 0, "mix weight: Amdahl jobs")
		power   = flag.Float64("power", 0, "mix weight: power-law jobs")
		comm    = flag.Float64("comm", 0, "mix weight: communication-overhead jobs")
		seq     = flag.Float64("seq", 0, "mix weight: sequential jobs")
		perfect = flag.Float64("perfect", 0, "mix weight: perfect-speedup jobs")

		arrivals = flag.String("arrivals", "", "emit an arrival trace instead of an instance: poisson|bursty")
		rate     = flag.Float64("rate", 1, "arrival-trace mean rate λ (arrivals per time unit)")
		horizon  = flag.Float64("horizon", 0, "arrival-trace horizon T (0: exactly n arrivals)")
		burst    = flag.Float64("burst", 8, "bursty trace: on/off rate ratio")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("geninstance: ")

	mix := moldable.GenConfig{
		Amdahl: *amdahl, Power: *power, Comm: *comm, Sequential: *seq, Perfect: *perfect,
	}
	if *preset != "" {
		cfg, err := moldable.Preset(*preset)
		if err != nil {
			log.Fatal(err)
		}
		mix = cfg
	}

	if *arrivals != "" {
		process, err := online.ParseProcess(*arrivals)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := online.Generate(online.TraceConfig{
			N: *n, Seed: *seed, Process: process,
			Rate: *rate, Horizon: *horizon, Burst: *burst,
			Jobs: mix,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := online.WriteTrace(os.Stdout, trace); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s trace: %d arrivals over [0, %.4g]\n",
			process, len(trace), trace[len(trace)-1].T)
		return
	}

	var in *moldable.Instance
	switch {
	case *planted:
		pl := moldable.Planted(moldable.PlantedConfig{M: *m, D: *d, Seed: *seed, MaxJobs: *n})
		in = pl.Instance
		fmt.Fprintf(os.Stderr, "planted optimum: %g (%d jobs)\n", pl.OPT, in.N())
	case *preset != "":
		cfg := mix
		cfg.N, cfg.M, cfg.Seed = *n, *m, *seed
		in = moldable.Random(cfg)
		fmt.Fprintf(os.Stderr, "%s\n", moldable.Summarize(in))
	default:
		cfg := mix
		cfg.N, cfg.M, cfg.Seed = *n, *m, *seed
		in = moldable.Random(cfg)
	}
	if err := moldable.WriteInstance(os.Stdout, in); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
