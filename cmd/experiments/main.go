// Command experiments regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -all                  # everything, default scales
//	experiments -table1 -quick       # Table 1 only, reduced sweep
//	experiments -fig1 -fig2 -fig3 -fig4
//	experiments -theorem2 -theorem3 -crossover
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table 1: running-time scaling of the (3/2+ε) duals")
		theorem2 = flag.Bool("theorem2", false, "Theorem 2: FPTAS polylog-in-m scaling")
		theorem3 = flag.Bool("theorem3", false, "Theorem 3: approximation quality on planted instances")
		fig1     = flag.Bool("fig1", false, "Figure 1: 4-Partition reduction schedule")
		fig2     = flag.Bool("fig2", false, "Figure 2: infeasible two-shelf schedule")
		fig3     = flag.Bool("fig3", false, "Figure 3: three-shelf schedule after transformation")
		fig4     = flag.Bool("fig4", false, "Figure 4: adaptive normalization intervals")
		cross    = flag.Bool("crossover", false, "MRT vs §4.3.3 wall-clock crossover in m")
		compare  = flag.Bool("comparison", false, "algorithms vs naive baselines across presets")
		est      = flag.Bool("estimator", false, "Ludwig–Tiwari estimator demo")
		quick    = flag.Bool("quick", false, "reduced sweeps (CI-friendly)")
		seed     = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()
	w := os.Stdout
	any := false
	run := func(enabled bool, f func()) {
		if enabled || *all {
			f()
			fmt.Fprintln(w)
			any = true
		}
	}
	run(*fig1, func() { experiments.Fig1(w, 4, *seed) })
	run(*fig2, func() { experiments.Fig2(w, *seed) })
	run(*fig3, func() { experiments.Fig3(w, *seed) })
	run(*fig4, func() { experiments.Fig4(w) })
	run(*est, func() { experiments.EstimatorDemo(w, *seed) })
	run(*compare, func() {
		n, m := 64, 256
		if *quick {
			n, m = 24, 64
		}
		experiments.Comparison(w, n, m, 0.25, *seed)
	})
	run(*theorem3, func() {
		cfg := experiments.DefaultTheorem3()
		if *quick {
			cfg.Seeds = cfg.Seeds[:3]
			cfg.Eps = cfg.Eps[:2]
		}
		experiments.Theorem3(w, cfg)
	})
	run(*theorem2, func() {
		cfg := experiments.DefaultTheorem2()
		if *quick {
			cfg.MSweep = cfg.MSweep[:4]
			cfg.Eps = cfg.Eps[:1]
		}
		experiments.Theorem2(w, cfg)
	})
	run(*table1, func() {
		cfg := experiments.DefaultTable1()
		cfg.Seed = *seed
		if *quick {
			cfg.NSweep = []int{64, 256, 1024}
			cfg.MSweep = []int{1 << 8, 1 << 12, 1 << 16}
			cfg.EpsSweep = []float64{0.4, 0.1}
			cfg.Reps = 1
		}
		experiments.Table1(w, cfg)
	})
	run(*cross, func() {
		sweep := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
		if *quick {
			sweep = sweep[:4]
		}
		experiments.Crossover(w, 256, sweep, 0.25, *seed)
	})
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
