// Command benchreport runs the repo's benchmark families and emits a
// machine-readable performance snapshot (BENCH_*.json), so every PR
// can diff its hot-path cost against the committed trajectory — the
// harness behind docs/PERFORMANCE.md and the CI regression gate.
//
// Two modes:
//
//	# snapshot: run the benchmarks, write BENCH_PR3.json
//	go run ./cmd/benchreport -bench 'Theorem3|Batch_' -out BENCH_PR3.json
//
//	# gate: run the same benchmarks and fail (exit 1) if allocs/op
//	# regressed more than 10% (+slack) against the committed baseline
//	go run ./cmd/benchreport -bench 'Theorem3|Batch_' -check BENCH_PR3.json
//
// The snapshot stores ns/op, B/op, allocs/op and any custom metrics
// (worst-ratio, instances/sec) per benchmark, grouped by family (the
// name up to the first '/'). Only allocs/op is gated: wall-clock is
// machine-dependent, but allocation counts are a property of the code
// path, so a >10% jump is a real hot-path change, not noise. The
// -slack flag (absolute allocs) absorbs environment-dependent warm-up
// effects — e.g. per-worker pool initialization amortized over a small
// -benchtime, which scales with GOMAXPROCS. Compare runs that used the
// same -benchtime for like-for-like amortization.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result. Names are normalized by stripping
// the -GOMAXPROCS suffix so snapshots compare across machines.
type Benchmark struct {
	Name       string             `json:"name"`
	Family     string             `json:"family"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"b_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the snapshot schema. Version guards future shape changes.
type Report struct {
	Version    int         `json:"version"`
	Go         string      `json:"go"`
	Bench      string      `json:"bench"`
	Benchtime  string      `json:"benchtime"`
	Package    string      `json:"package"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", "Theorem3|Batch_", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime (use Nx for deterministic iteration counts)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
		check     = flag.String("check", "", "compare against this baseline snapshot instead of writing one")
		tolerance = flag.Float64("tolerance", 0.10, "relative allocs/op regression tolerated in -check mode")
		slack     = flag.Float64("slack", 16, "absolute allocs/op slack added to the tolerance in -check mode")
		anyGo     = flag.Bool("allow-go-mismatch", false, "permit -check against a baseline from a different Go toolchain")
		input     = flag.String("input", "", "parse this 'go test -bench' output file instead of running go test (for testing)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// In -check mode the baseline is the source of truth for WHAT to
	// run: its recorded bench regex and benchtime default the flags
	// (so the CI invocation cannot drift from the snapshot), and
	// explicitly passing different values is refused — a narrower
	// regex would silently un-gate families, and a different
	// benchtime skews warm-up amortization (see docs/PERFORMANCE.md).
	var base Report
	if *check != "" {
		var err error
		base, err = loadReport(*check)
		if err != nil {
			fatalf("loading baseline: %v", err)
		}
		if base.Bench != "" {
			if !explicit["bench"] {
				*bench = base.Bench
			} else if *bench != base.Bench {
				fatalf("-bench %q differs from baseline's recorded %q; drop the flag or regenerate %s",
					*bench, base.Bench, *check)
			}
		}
		if base.Benchtime != "" {
			if !explicit["benchtime"] {
				*benchtime = base.Benchtime
			} else if *benchtime != base.Benchtime {
				fatalf("-benchtime %q differs from baseline's recorded %q; drop the flag or regenerate %s",
					*benchtime, base.Benchtime, *check)
			}
		}
	}

	var raw []byte
	var err error
	if *input != "" {
		raw, err = os.ReadFile(*input)
		if err != nil {
			fatalf("reading -input: %v", err)
		}
	} else {
		raw, err = runBenchmarks(*bench, *benchtime, *pkg)
		if err != nil {
			fatalf("%v", err)
		}
	}
	rep := Report{
		Version:    1,
		Go:         runtime.Version(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Package:    *pkg,
		Benchmarks: parseBenchOutput(raw),
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark results parsed; regex %q matched nothing?", *bench)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	if *check != "" {
		// allocs/op is toolchain-dependent (map internals, append
		// growth, inlining all shift between Go releases), so a
		// cross-version comparison can both cry wolf and mask real
		// regressions. Refuse it unless explicitly overridden.
		if !*anyGo && base.Go != "" && base.Go != rep.Go {
			fatalf("baseline %s was generated with %s but this run uses %s; "+
				"match the toolchain, regenerate the baseline, or pass -allow-go-mismatch",
				*check, base.Go, rep.Go)
		}
		if failures := compare(base, rep, *tolerance, *slack); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchreport: %d benchmarks within %.0f%% (+%g) of %s\n",
			len(rep.Benchmarks), *tolerance*100, *slack, *check)
		return
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func runBenchmarks(bench, benchtime, pkg string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime, pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return buf.Bytes(), nil
}

// gomaxprocsSuffix strips the trailing -N goroutine count go test
// appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput parses `go test -bench -benchmem` text output:
//
//	BenchmarkName/sub-8  50  100339 ns/op  1.673 worst-ratio  0 B/op  0 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs in any order.
func parseBenchOutput(raw []byte) []Benchmark {
	var out []Benchmark
	scan := bufio.NewScanner(bytes.NewReader(raw))
	scan.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		b := Benchmark{Name: name, Family: name, Iterations: iters}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			b.Family = name[:i]
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out
}

func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare gates allocs/op of every benchmark present in both runs:
// current > baseline·(1+tolerance) + slack is a regression. New
// benchmarks (no baseline entry) and baseline benchmarks that did not
// run are reported informationally, never as failures, so adding or
// narrowing families does not break the gate.
func compare(base, cur Report, tolerance, slack float64) []string {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var failures []string
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Printf("benchreport: %s: new benchmark (allocs/op %.0f), no baseline\n", c.Name, c.AllocsOp)
			continue
		}
		delete(baseBy, c.Name)
		limit := b.AllocsOp*(1+tolerance) + slack
		if c.AllocsOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.1f exceeds baseline %.1f (limit %.1f = +%.0f%% +%g)",
				c.Name, c.AllocsOp, b.AllocsOp, limit, tolerance*100, slack))
		}
	}
	for name := range baseBy {
		fmt.Printf("benchreport: %s: in baseline but not in this run\n", name)
	}
	sort.Strings(failures)
	return failures
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
