package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTheorem3_FullRun/mrt-8         	       5	    247079 ns/op	         1.673 worst-ratio	  123505 B/op	     965 allocs/op
BenchmarkTheorem3_ScratchSteadyState/linear-8   	      50	    842261 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatch_Throughput/memoized-16    	       5	  10273319 ns/op	        97.34 instances/sec	 1821244 B/op	     200 allocs/op
PASS
ok  	repro	0.655s
`

func TestParseBenchOutput(t *testing.T) {
	bs := parseBenchOutput([]byte(sample))
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	mrt := bs[0]
	if mrt.Name != "BenchmarkTheorem3_FullRun/mrt" {
		t.Fatalf("name %q: GOMAXPROCS suffix not stripped", mrt.Name)
	}
	if mrt.Family != "BenchmarkTheorem3_FullRun" {
		t.Fatalf("family %q", mrt.Family)
	}
	if mrt.Iterations != 5 || mrt.NsPerOp != 247079 || mrt.BytesPerOp != 123505 || mrt.AllocsOp != 965 {
		t.Fatalf("mrt fields: %+v", mrt)
	}
	if mrt.Metrics["worst-ratio"] != 1.673 {
		t.Fatalf("custom metric lost: %+v", mrt.Metrics)
	}
	if zero := bs[1]; zero.AllocsOp != 0 || zero.BytesPerOp != 0 {
		t.Fatalf("zero-alloc row mis-parsed: %+v", zero)
	}
	if batch := bs[2]; batch.Metrics["instances/sec"] != 97.34 {
		t.Fatalf("instances/sec lost: %+v", batch)
	}
}

func TestCompareGatesAllocRegressions(t *testing.T) {
	base := Report{Benchmarks: parseBenchOutput([]byte(sample))}
	// Same run: no regressions.
	if f := compare(base, base, 0.10, 0); len(f) != 0 {
		t.Fatalf("self-compare failed: %v", f)
	}
	// Inflate one benchmark's allocs beyond 10% + slack.
	cur := Report{Benchmarks: parseBenchOutput([]byte(strings.Replace(sample,
		"965 allocs/op", "1200 allocs/op", 1)))}
	f := compare(base, cur, 0.10, 16)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkTheorem3_FullRun/mrt") {
		t.Fatalf("expected one mrt regression, got %v", f)
	}
	// Within slack: 0 → 10 allocs must pass (absolute slack).
	cur2 := Report{Benchmarks: parseBenchOutput([]byte(strings.Replace(sample,
		"0 B/op	       0 allocs/op", "80 B/op	       10 allocs/op", 1)))}
	if f := compare(base, cur2, 0.10, 16); len(f) != 0 {
		t.Fatalf("slack not applied: %v", f)
	}
	// New benchmarks and missing benchmarks are informational.
	extra := Report{Benchmarks: append(parseBenchOutput([]byte(sample)),
		Benchmark{Name: "BenchmarkNew/x", AllocsOp: 1e6})}
	if f := compare(base, extra, 0.10, 0); len(f) != 0 {
		t.Fatalf("new benchmark treated as regression: %v", f)
	}
}
