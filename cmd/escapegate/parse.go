package main

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// declAsFunc narrows a declaration to a body-bearing function.
func declAsFunc(decl ast.Decl) (*ast.FuncDecl, bool) {
	fd, ok := decl.(*ast.FuncDecl)
	return fd, ok && fd.Body != nil
}

// qualName renders a function's baseline key the way the compiler
// names it in inline diagnostics: F, T.M, or (*T).M.
func qualName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := false
	if se, ok := t.(*ast.StarExpr); ok {
		star = true
		t = se.X
	}
	// Strip type parameters of a generic receiver: T[P] names as T.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if star {
		return "(*" + name + ")." + fd.Name.Name
	}
	return name + "." + fd.Name.Name
}

// escEvent is one parsed compiler diagnostic.
type escEvent struct {
	file string // as printed (module-root-relative under `go build ./...`)
	line int
	col  int
	msg  string
	// kind: escape ("... escapes to heap" / "moved to heap ...") or
	// inline verdict for the function declared at this position.
	isEscape  bool
	isInline  bool
	canInline bool
	funcName  string // inline verdicts: the function the compiler named
}

var (
	diagRe      = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)
	canInlRe    = regexp.MustCompile(`^can inline ([^ ]+)`)
	cannotInlRe = regexp.MustCompile(`^cannot inline ([^ ]+):`)
)

// parseEscapeOutput extracts escape and inlining events from a
// `go build -gcflags=-m=2` transcript. Flow-explanation lines (message
// starting with whitespace) and `# package` headers are skipped. The
// compiler prints each escape twice — once with a trailing colon
// introducing the flow detail, once bare — so events are deduplicated
// by position and normalized message.
func parseEscapeOutput(transcript string) []escEvent {
	var events []escEvent
	seen := map[string]bool{}
	for _, line := range strings.Split(transcript, "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue // "# pkg" headers, blank lines
		}
		msg := m[4]
		if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
			continue // flow detail ("  flow: ...", "    from ...")
		}
		ev := escEvent{file: m[1], msg: strings.TrimSuffix(msg, ":")}
		ev.line, _ = strconv.Atoi(m[2])
		ev.col, _ = strconv.Atoi(m[3])
		switch {
		case strings.Contains(ev.msg, "escapes to heap"),
			strings.Contains(ev.msg, "moved to heap"):
			ev.isEscape = true
		case canInlRe.MatchString(ev.msg):
			ev.isInline = true
			ev.canInline = true
			ev.funcName = canInlRe.FindStringSubmatch(ev.msg)[1]
		case cannotInlRe.MatchString(ev.msg):
			ev.isInline = true
			ev.funcName = cannotInlRe.FindStringSubmatch(ev.msg)[1]
		default:
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", ev.file, ev.line, ev.col, ev.msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		events = append(events, ev)
	}
	return events
}

// attribute assigns events to hot-path function spans: escapes by
// file + line containment (generic instantiations print positions in
// other files, which simply never match a span), inline verdicts by
// the declaration line. Returns the baseline function map.
func attribute(spans []span, events []escEvent) map[string]FuncFacts {
	funcs := map[string]FuncFacts{}
	for _, s := range spans {
		funcs[s.key()] = FuncFacts{}
	}
	for _, ev := range events {
		for _, s := range spans {
			if ev.file != s.file {
				continue
			}
			facts := funcs[s.key()]
			switch {
			case ev.isEscape && ev.line >= s.start && ev.line <= s.end:
				if facts.Escapes == nil {
					facts.Escapes = map[string]int{}
				}
				facts.Escapes[ev.msg]++
			case ev.isInline && ev.line == s.start:
				facts.Inline = ev.canInline
			default:
				continue
			}
			funcs[s.key()] = facts
		}
	}
	return funcs
}

// compare gates the current facts against the baseline. Failures:
// a new escape message, more occurrences of a known one, an inlinable
// function that stopped inlining, or a baseline function that
// disappeared. New functions are gated against an empty baseline.
// Escapes that vanished or functions that became inlinable only
// mean the baseline is stale-but-safe; they pass (refresh with -out
// when convenient).
func compare(base, cur Report) []string {
	var failures []string
	for key, facts := range cur.Functions {
		bf, ok := base.Functions[key]
		if !ok {
			bf = FuncFacts{Inline: facts.Inline} // new function: empty escape baseline
		}
		var msgs []string
		for msg := range facts.Escapes {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		for _, msg := range msgs {
			n, bn := facts.Escapes[msg], bf.Escapes[msg]
			switch {
			case bn == 0:
				failures = append(failures, fmt.Sprintf("%s: new heap escape: %s", key, msg))
			case n > bn:
				failures = append(failures, fmt.Sprintf("%s: %q now occurs %d× (baseline %d×)", key, msg, n, bn))
			}
		}
		if ok && bf.Inline && !facts.Inline {
			failures = append(failures, fmt.Sprintf("%s: no longer inlinable (baseline says it was)", key))
		}
	}
	var gone []string
	for key := range base.Functions {
		if _, ok := cur.Functions[key]; !ok {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		failures = append(failures, fmt.Sprintf("%s: in baseline but not in the tree (renamed or de-annotated?)", key))
	}
	sort.Strings(failures)
	return failures
}
