package main

import (
	"os"
	"testing"
)

// spans matching the canned transcript: Hot covers lines 10–20 (the
// escapes at 12 and 14 belong to it, the one at 50 does not), Leaf is
// the inlinable one-liner at 30–32.
var testSpans = []span{
	{file: "internal/pkg/hot.go", name: "Hot", start: 10, end: 20},
	{file: "internal/pkg/hot.go", name: "Leaf", start: 30, end: 32},
}

func loadTranscript(t *testing.T) []escEvent {
	t.Helper()
	raw, err := os.ReadFile("testdata/m2.txt")
	if err != nil {
		t.Fatal(err)
	}
	return parseEscapeOutput(string(raw))
}

func TestParseEscapeOutput(t *testing.T) {
	events := loadTranscript(t)
	var escapes, inlines int
	for _, ev := range events {
		if ev.isEscape {
			escapes++
		}
		if ev.isInline {
			inlines++
		}
	}
	// The duplicated "make([]int, n) escapes to heap" (flow-detail
	// variant with trailing colon + bare repeat) must collapse to one
	// event; flow lines and "does not escape" are not events.
	if escapes != 3 {
		t.Errorf("escapes = %d, want 3 (make, moved-to-heap x, v)", escapes)
	}
	if inlines != 3 {
		t.Errorf("inline verdicts = %d, want 3 (Hot, Leaf, Cold)", inlines)
	}
	for _, ev := range events {
		if ev.isInline && ev.funcName == "Hot" && ev.canInline {
			t.Errorf("Hot parsed as inlinable; transcript says cannot inline")
		}
		if ev.isInline && ev.funcName == "Leaf" && !ev.canInline {
			t.Errorf("Leaf parsed as not inlinable; transcript says can inline")
		}
	}
}

func TestAttribute(t *testing.T) {
	funcs := attribute(testSpans, loadTranscript(t))
	hot := funcs["internal/pkg/hot.go:Hot"]
	if hot.Inline {
		t.Errorf("Hot.Inline = true, want false")
	}
	if n := hot.Escapes["make([]int, n) escapes to heap"]; n != 1 {
		t.Errorf("Hot make escape count = %d, want 1 (dedupe of the colon/bare pair)", n)
	}
	if n := hot.Escapes["moved to heap: x"]; n != 1 {
		t.Errorf("Hot moved-to-heap count = %d, want 1", n)
	}
	if len(hot.Escapes) != 2 {
		t.Errorf("Hot escapes = %v, want exactly the two in-span messages (line 50 is outside)", hot.Escapes)
	}
	leaf := funcs["internal/pkg/hot.go:Leaf"]
	if !leaf.Inline {
		t.Errorf("Leaf.Inline = false, want true (verdict attributed by decl line)")
	}
	if len(leaf.Escapes) != 0 {
		t.Errorf("Leaf escapes = %v, want none", leaf.Escapes)
	}
}

func TestCompare(t *testing.T) {
	cur := Report{Functions: attribute(testSpans, loadTranscript(t))}

	identical := Report{Functions: attribute(testSpans, loadTranscript(t))}
	if f := compare(identical, cur); len(f) != 0 {
		t.Errorf("identical reports: failures %v, want none", f)
	}

	// A new escape message fails.
	noMake := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Hot":  {Escapes: map[string]int{"moved to heap: x": 1}},
		"internal/pkg/hot.go:Leaf": {Inline: true},
	}}
	if f := compare(noMake, cur); len(f) != 1 {
		t.Errorf("new-escape case: failures %v, want exactly 1", f)
	}

	// More occurrences of a known message fail.
	fewer := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Hot": {Escapes: map[string]int{
			"make([]int, n) escapes to heap": 1, "moved to heap: x": 1}},
		"internal/pkg/hot.go:Leaf": {Inline: true},
	}}
	doubled := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Hot": {Escapes: map[string]int{
			"make([]int, n) escapes to heap": 2, "moved to heap: x": 1}},
		"internal/pkg/hot.go:Leaf": {Inline: true},
	}}
	if f := compare(fewer, doubled); len(f) != 1 {
		t.Errorf("count-increase case: failures %v, want exactly 1", f)
	}
	// ...but fewer occurrences than baseline pass (stale-but-safe).
	if f := compare(doubled, fewer); len(f) != 0 {
		t.Errorf("count-decrease case: failures %v, want none", f)
	}

	// An inlinable function that stopped inlining fails.
	leafStuck := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Hot": {Escapes: map[string]int{
			"make([]int, n) escapes to heap": 1, "moved to heap: x": 1}},
		"internal/pkg/hot.go:Leaf": {Inline: false},
	}}
	if f := compare(cur, leafStuck); len(f) != 1 {
		t.Errorf("inline-regression case: failures %v, want exactly 1", f)
	}

	// A baseline function missing from the tree fails (rename/refresh).
	gone := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Hot": cur.Functions["internal/pkg/hot.go:Hot"],
	}}
	if f := compare(cur, gone); len(f) != 1 {
		t.Errorf("missing-function case: failures %v, want exactly 1", f)
	}

	// A function new since the baseline is gated against empty: its
	// escapes fail, a clean one passes.
	if f := compare(gone, cur); len(f) != 0 {
		t.Errorf("new clean function: failures %v, want none (Leaf has no escapes)", f)
	}
	onlyLeaf := Report{Functions: map[string]FuncFacts{
		"internal/pkg/hot.go:Leaf": {Inline: true},
	}}
	if f := compare(onlyLeaf, cur); len(f) != 2 {
		t.Errorf("new escaping function: failures %v, want 2 (Hot's two messages)", f)
	}
}

func TestQualNameAndSpans(t *testing.T) {
	// End-to-end over the real repository: discovery must find the
	// hot-path set and every span key must be stable. Discovery is
	// cwd-relative (the tool runs from the module root), so hop up
	// from the package directory.
	t.Chdir("../..")
	spans, pkgs, modRoot, err := discoverHotpath("./...")
	if err != nil {
		t.Fatal(err)
	}
	if modRoot == "" {
		t.Fatal("no module root")
	}
	if len(spans) == 0 || len(pkgs) == 0 {
		t.Fatalf("found %d spans in %d packages, want some of each", len(spans), len(pkgs))
	}
	seen := map[string]bool{}
	for _, s := range spans {
		if s.start <= 0 || s.end < s.start {
			t.Errorf("%s: bad span %d-%d", s.key(), s.start, s.end)
		}
		if seen[s.key()] {
			t.Errorf("duplicate span key %s", s.key())
		}
		seen[s.key()] = true
	}
}
