// Command escapegate is the compile-time half of the allocation gate:
// it runs the gc compiler's escape analysis (`go build -gcflags=-m=2`)
// over every package containing a //sched:hotpath function, attributes
// the "escapes to heap"/"moved to heap" diagnostics to those
// functions, and compares the result against a committed baseline
// (ESCAPE_PR9.json) — the same snapshot-and-gate contract as
// cmd/benchreport, but catching allocation regressions at compile time
// instead of waiting for an allocs/op benchmark to drift.
//
// Two modes:
//
//	# snapshot: record today's escape/inlining facts
//	go run ./cmd/escapegate -out ESCAPE_PR9.json
//
//	# gate: fail (exit 1) if a hot-path function gained a heap escape
//	# or a previously inlinable one stopped inlining
//	go run ./cmd/escapegate -check ESCAPE_PR9.json
//
// Per hot-path function the snapshot stores the multiset of escape
// messages (positions stripped, so unrelated edits above a function
// don't invalidate the baseline) and whether the compiler can inline
// it. The gate fails on: a new escape message, more occurrences of a
// known one, an inlinable function that stopped inlining, or a
// baseline function that no longer exists (refresh the snapshot).
// Functions added since the snapshot are gated against empty — a brand
// new hot-path function must start escape-clean.
//
// Go 1.24's build cache replays compiler diagnostics, so warm runs
// cost well under a second; no -a rebuild is needed. Baselines are
// toolchain-specific (escape analysis changes between releases):
// -check refuses a baseline from a different Go version unless
// -allow-go-mismatch is set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// FuncFacts is one hot-path function's compiler-derived facts.
type FuncFacts struct {
	// Inline reports whether the compiler can inline the function.
	Inline bool `json:"inline"`
	// Escapes maps a position-stripped escape message ("&x escapes to
	// heap", "make([]T, n) escapes to heap") to its occurrence count
	// within the function body.
	Escapes map[string]int `json:"escapes,omitempty"`
}

// Report is the snapshot schema, keyed by "<relfile>:<qualified name>".
type Report struct {
	Version   int                  `json:"version"`
	Go        string               `json:"go"`
	Packages  []string             `json:"packages"`
	Functions map[string]FuncFacts `json:"functions"`
}

func main() {
	var (
		out      = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
		check    = flag.String("check", "", "compare against this baseline snapshot instead of writing one")
		patterns = flag.String("patterns", "./...", "package patterns to scan for //sched:hotpath functions")
		anyGo    = flag.Bool("allow-go-mismatch", false, "permit -check against a baseline from a different Go toolchain")
	)
	flag.Parse()
	if *out != "" && *check != "" {
		fatalf("-out and -check are mutually exclusive")
	}

	spans, pkgs, modRoot, err := discoverHotpath(*patterns)
	if err != nil {
		fatalf("%v", err)
	}
	if len(spans) == 0 {
		fatalf("no //sched:hotpath functions found under %s", *patterns)
	}
	transcript, err := runEscapeAnalysis(modRoot, pkgs)
	if err != nil {
		fatalf("%v", err)
	}
	rep := Report{
		Version:   1,
		Go:        runtime.Version(),
		Packages:  pkgs,
		Functions: attribute(spans, parseEscapeOutput(transcript)),
	}

	if *check != "" {
		base, err := loadReport(*check)
		if err != nil {
			fatalf("loading baseline: %v", err)
		}
		if base.Go != rep.Go && !*anyGo {
			fatalf("baseline %s was made with %s but this is %s; escape analysis differs across releases — regenerate the baseline or pass -allow-go-mismatch",
				*check, base.Go, rep.Go)
		}
		failures := compare(base, rep)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "escapegate: "+f)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "escapegate: %d failure(s) against %s; if intended, refresh with: go run ./cmd/escapegate -out %s\n",
				len(failures), *check, *check)
			os.Exit(1)
		}
		fmt.Printf("escapegate: %d hot-path function(s) across %d package(s) match %s\n",
			len(rep.Functions), len(rep.Packages), *check)
		return
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("escapegate: wrote %s (%d functions, %d packages)\n", *out, len(rep.Functions), len(rep.Packages))
}

// span is one //sched:hotpath function's source extent.
type span struct {
	file       string // module-root-relative path
	name       string // qualified name: F, T.M, or (*T).M
	start, end int    // 1-based line range; start is the `func` keyword line
}

func (s span) key() string { return s.file + ":" + s.name }

// discoverHotpath loads the module's packages and collects the source
// spans of every //sched:hotpath function plus the sorted import paths
// of the packages containing one.
func discoverHotpath(patterns string) ([]span, []string, string, error) {
	pkgs, err := analysis.Load(".", strings.Fields(patterns)...)
	if err != nil {
		return nil, nil, "", err
	}
	var spans []span
	pkgSet := map[string]bool{}
	modRoot := ""
	for _, pkg := range pkgs {
		if pkg.ModRoot != "" {
			modRoot = pkg.ModRoot
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := declAsFunc(decl)
				if !ok || !analysis.HasHotpathDirective(fd) {
					continue
				}
				pos := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				rel := pos.Filename
				if modRoot != "" {
					if r, err := filepath.Rel(modRoot, pos.Filename); err == nil {
						rel = filepath.ToSlash(r)
					}
				}
				spans = append(spans, span{
					file:  rel,
					name:  qualName(fd),
					start: pos.Line,
					end:   end.Line,
				})
				pkgSet[pkg.PkgPath] = true
			}
		}
	}
	var pkgList []string
	for p := range pkgSet {
		pkgList = append(pkgList, p)
	}
	sort.Strings(pkgList)
	sort.Slice(spans, func(i, j int) bool { return spans[i].key() < spans[j].key() })
	return spans, pkgList, modRoot, nil
}

// runEscapeAnalysis builds the packages with -m=2 and returns the
// compiler's combined diagnostics.
func runEscapeAnalysis(dir string, pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, out)
	}
	return string(out), nil
}

func loadReport(path string) (Report, error) {
	var r Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(raw, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "escapegate: "+format+"\n", args...)
	os.Exit(2)
}
