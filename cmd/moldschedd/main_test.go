package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netserve"
	"repro/internal/service"
)

// response aliases the wire response shape the daemon serves (the loop
// itself lives in internal/netserve since the TCP transport landed; the
// daemon tests keep exercising it through the same entry point main
// uses for pipe mode).
type response = netserve.Response

// runSession feeds the request lines through the serve loop against a
// fresh service and decodes every response. A trailing shutdown is
// appended so the loop drains its async handlers before returning.
func runSession(t *testing.T, lines ...string) []response {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	in := strings.Join(append(lines, `{"op":"shutdown","tag":"end"}`), "\n") + "\n"
	var buf bytes.Buffer
	if err := netserve.ServeLines(context.Background(), svc, strings.NewReader(in), &buf, netserve.ServeConfig{Probes: 64}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	var out []response
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var r response
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		out = append(out, r)
	}
	if len(out) == 0 || out[len(out)-1].Op != "shutdown" {
		t.Fatalf("session did not end with a shutdown ack: %+v", out)
	}
	return out
}

// find returns the first response matching pred, failing if none does.
func find(t *testing.T, rs []response, what string, pred func(response) bool) response {
	t.Helper()
	for _, r := range rs {
		if pred(r) {
			return r
		}
	}
	t.Fatalf("no %s response in %+v", what, rs)
	return response{}
}

// TestServeMalformedLineKeepsSessionAlive: a line that is not valid
// JSON must yield a bad_request error response and the loop must keep
// serving — the stats request after the garbage still gets answered.
func TestServeMalformedLineKeepsSessionAlive(t *testing.T) {
	rs := runSession(t,
		`{"op":"stats","tag":"before"}`,
		`{not json at all`,
		`{"op":"stats","tag":"after"}`,
	)
	bad := find(t, rs, "bad_request", func(r response) bool { return r.Code == "bad_request" && r.Op == "error" })
	if bad.Error == "" {
		t.Fatalf("bad_request response carries no error text: %+v", bad)
	}
	find(t, rs, "stats after garbage", func(r response) bool { return r.Op == "stats" && r.Tag == "after" })
	// An unknown op is the structured sibling of garbage: same code,
	// same survival.
	rs = runSession(t,
		`{"op":"frobnicate","tag":"x"}`,
		`{"op":"stats","tag":"after"}`,
	)
	find(t, rs, "unknown-op error", func(r response) bool { return r.Code == "bad_request" && r.Tag == "x" })
	find(t, rs, "stats after unknown op", func(r response) bool { return r.Op == "stats" && r.Tag == "after" })
}

// TestServeArriveAfterDrain: draining an online session releases its
// ticket; a later arrive must produce a typed unknown_ticket error —
// not a panic, not a silent success — and the loop keeps serving.
func TestServeArriveAfterDrain(t *testing.T) {
	rs := runSession(t,
		`{"op":"open_online","tag":"s1","m":64,"policy":"epoch","eps":0.5}`,
		`{"op":"arrive","id":1,"t":0,"job":{"type":"amdahl","seq":2,"par":98}}`,
		`{"op":"drain","id":1}`,
		`{"op":"arrive","id":1,"t":1,"job":{"type":"amdahl","seq":2,"par":98}}`,
		`{"op":"stats","tag":"after"}`,
	)
	open := find(t, rs, "open_online", func(r response) bool { return r.Op == "open_online" && r.Tag == "s1" })
	if open.Code != "" || open.ID != 1 {
		t.Fatalf("open_online failed: %+v", open)
	}
	first := find(t, rs, "first arrive", func(r response) bool { return r.Op == "arrive" && r.Code == "" })
	if len(first.Events) == 0 {
		t.Fatalf("first arrive produced no events: %+v", first)
	}
	find(t, rs, "drain", func(r response) bool { return r.Op == "drain" && r.Code == "" })
	late := find(t, rs, "late arrive", func(r response) bool { return r.Op == "arrive" && r.Code != "" })
	if late.Code != "unknown_ticket" {
		t.Fatalf("arrive after drain: code %q, want unknown_ticket (%+v)", late.Code, late)
	}
	find(t, rs, "stats after late arrive", func(r response) bool { return r.Op == "stats" && r.Tag == "after" })
}

// TestServeUnknownAlgoEnumeratesNames: a submit with an unknown algo
// string must come back bad_request with every accepted name — conv
// included — so a client can self-correct from the error text alone.
func TestServeUnknownAlgoEnumeratesNames(t *testing.T) {
	rs := runSession(t,
		`{"op":"submit","tag":"bad","algo":"simplex","instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98}]}}`,
	)
	bad := find(t, rs, "submit error", func(r response) bool { return r.Op == "submit" && r.Tag == "bad" })
	if bad.Code != "bad_request" {
		t.Fatalf("unknown algo: code %q, want bad_request (%+v)", bad.Code, bad)
	}
	for _, name := range core.AlgorithmNames() {
		if !strings.Contains(bad.Error, name) {
			t.Errorf("error %q does not mention algorithm %q", bad.Error, name)
		}
	}
	if !strings.Contains(bad.Error, "conv") {
		t.Errorf("error %q does not mention conv", bad.Error)
	}
}

// TestServeSubmitConv: the conv wire name round-trips through submit
// and the result reports the algorithm that ran.
func TestServeSubmitConv(t *testing.T) {
	rs := runSession(t,
		`{"op":"submit","tag":"c1","algo":"conv","eps":0.25,"instance":{"m":256,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"power","w":50,"alpha":0.8}]}}`,
		`{"op":"result","id":1,"wait":true}`,
	)
	sub := find(t, rs, "submit ack", func(r response) bool { return r.Op == "submit" && r.Tag == "c1" })
	if sub.Code != "" {
		t.Fatalf("conv submit rejected: %+v", sub)
	}
	res := find(t, rs, "result", func(r response) bool { return r.Op == "result" && r.ID == sub.ID })
	if res.Code != "" || res.Algorithm != "conv" || !(res.Makespan > 0) {
		t.Fatalf("conv result: %+v", res)
	}
}
