// Command moldschedd is the long-running scheduling daemon: a JSON-lines
// front end over internal/service, speaking the wire protocol of
// docs/PROTOCOL.md in two transports.
//
// By default it reads one request object per line from stdin and writes
// one response object per line to stdout, so any process that can speak
// pipes can drive it:
//
//	moldschedd < requests.jsonl
//	mkfifo req && moldschedd < req > resp &
//
// With -listen it instead serves the same protocol over TCP, one
// protocol session per connection, fronting -shards backend scheduler
// shards routed by instance hash:
//
//	moldschedd -listen :7463 -shards 4
//
// Network mode adds admission control (-max-inflight; shed requests get
// the "overloaded" code), per-tenant token-bucket quotas (-quota-rate /
// -quota-burst, keyed by the connection's "hello" tenant), idle
// online-session reaping (-idle-session), and an HTTP side (-http) with
// /healthz, /stats, and the protocol over POST /rpc. A "shutdown"
// request over TCP ends its own connection only; over stdin it exits
// the process. See docs/PROTOCOL.md ("Transport") for the full
// specification and internal/netserve for the implementation shared by
// both transports.
//
// Requests ("op" selects the operation):
//
//	{"op":"submit","tag":"a1","algo":"auto","eps":0.1,"validate":false,
//	 "timeout_ms":250,
//	 "instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98}]}}
//	{"op":"result","id":1,"wait":true}
//	{"op":"stats"}
//	{"op":"shutdown"}
//
// Responses echo "op" (and "tag"/"id" where relevant):
//
//	{"op":"submit","tag":"a1","id":1}
//	{"op":"result","id":1,"done":true,"cached":false,"algorithm":"linear",
//	 "makespan":12.5,"lowerbound":11.9,"ratio":1.05,"iterations":7,
//	 "elapsed_ms":0.8,"allot":[3,1]}
//	{"op":"stats","submitted":1,"completed":1,...}
//
// submit replies with a ticket id once the instance is validated; the
// work runs on the service's sharded pool. timeout_ms > 0 sets a
// per-submission deadline: when it expires before the work finishes,
// the ticket completes with a canceled-error result instead of
// blocking forever. result with wait=true answers when the ticket
// completes. Responses are written as they become ready, so they may
// interleave out of request order — submit replies included
// (validation runs off the read loop); correlate submit replies by tag
// and result replies by id. result consumes the ticket. shutdown
// drains in-flight work and exits.
//
// Online sessions (the event-driven arrivals runtime of
// internal/online; DESIGN.md §7) have four further ops:
//
//	{"op":"open_online","tag":"s1","m":64,"policy":"epoch","algo":"auto","eps":0.1}
//	{"op":"arrive","id":2,"t":0.5,"job":{"type":"amdahl","seq":2,"par":98}}
//	{"op":"trace","id":2}
//	{"op":"drain","id":2}
//
// open_online creates a session owning one runtime and returns its
// ticket; arrive admits one timestamped job (timestamps non-decreasing
// per session) and returns the machine events it caused; trace returns
// the session's full event log so far; drain runs the session to
// completion, returns the remaining events plus realized metrics, and
// releases the ticket. Unlike submit/result, the session ops are
// handled on the read loop in request order — a session is stateful
// and its arrivals are meaningful only in sequence.
//
// Every response carries a "trace_id" echoing the request's (or a
// server-assigned "t-<n>" when the request carried none); a stats
// request with "trace":true additionally returns the sampled
// scheduling decision traces (docs/OBSERVABILITY.md). -debug-addr
// serves GET /metrics (Prometheus text format) and net/http/pprof on a
// separate address in every mode, pipe mode included; it is off by
// default.
//
// Error responses carry a stable "code" alongside the human-readable
// "error" text, from the typed taxonomy of internal/scherr:
// "not_monotone", "regime", "canceled", "bad_eps", "internal", plus
// the protocol-level "bad_request", "unknown_ticket", "overloaded"
// (admission or quota shed) and "unavailable" (backend shard died).
// Clients should branch on the code, never the text.
//
// See DESIGN.md §5 for the daemon's place in the serving architecture
// and docs/PROTOCOL.md for the full wire specification.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/netserve"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		workers  = flag.Int("workers", 0, "pool workers per shard (0: GOMAXPROCS)")
		cacheCap = flag.Int("cache", 1024, "result-cache capacity per shard (0: default)")
		memoCap  = flag.Int("memo", 256, "memoized-instance capacity per shard (0: default)")
		memoMB   = flag.Int("memo-mb", 256, "memoized-instance byte budget in MB per shard (0: default)")
		noMemo   = flag.Bool("no-memo", false, "disable oracle memoization")
		noCache  = flag.Bool("no-cache", false, "disable the result cache")
		probes   = flag.Int("probes", 256, "monotonicity probes per submitted job (0: exhaustive)")

		listen      = flag.String("listen", "", "serve the wire protocol on this TCP address (e.g. :7463) instead of stdin/stdout")
		httpAddr    = flag.String("http", "", "serve /healthz, /stats and POST /rpc on this HTTP address")
		shards      = flag.Int("shards", 1, "backend scheduler shards (network mode; instances route by hash)")
		maxInflight = flag.Int("max-inflight", 0, "admitted-request budget across all connections (0: unlimited; excess sheds with code \"overloaded\")")
		quotaRate   = flag.Float64("quota-rate", 0, "per-tenant request quota in req/s (0: no quotas)")
		quotaBurst  = flag.Float64("quota-burst", 0, "per-tenant quota burst capacity (0: defaults to max(1, quota-rate))")
		idleSession = flag.Duration("idle-session", 0, "reap online sessions idle longer than this (0: never)")
		debugAddr   = flag.String("debug-addr", "", "serve GET /metrics (Prometheus text) and /debug/pprof on this HTTP address (off when empty)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("moldschedd: ")

	svcCfg := service.Config{
		Workers:        *workers,
		ResultCacheCap: *cacheCap,
		MemoCap:        *memoCap,
		MemoBudgetMB:   *memoMB,
		NoMemoize:      *noMemo,
		NoResultCache:  *noCache,
	}
	ctx := context.Background()

	if *listen == "" && *httpAddr == "" {
		// Pipe mode (the default): one in-process service, no admission
		// control — the peer on the other end of the pipe is trusted.
		svc := service.New(svcCfg)
		defer svc.Close()
		if *debugAddr != "" {
			// The debug server lives until process exit; its error lands
			// on a buffered channel nobody needs to drain in pipe mode —
			// a dead debug listener must not stop request serving.
			startDebug(*debugAddr, func() { service.PublishStats(svc.Stats()) }, make(chan error, 1))
		}
		if err := netserve.ServeLines(ctx, svc, os.Stdin, os.Stdout, netserve.ServeConfig{Probes: *probes}); err != nil {
			log.Fatalf("reading stdin: %v", err)
		}
		return
	}

	srv := netserve.NewServer(ctx, netserve.ServerConfig{
		Shards:  *shards,
		Service: svcCfg,
		Limits: netserve.Limits{
			MaxInflight: *maxInflight,
			QuotaRate:   *quotaRate,
			QuotaBurst:  *quotaBurst,
		},
		Probes:      *probes,
		IdleSession: *idleSession,
	})
	defer srv.Close()

	// All listeners report onto one channel; the first fatal error (or
	// clean stop) takes the daemon down through srv.Close above.
	errc := make(chan error, 3)
	if *debugAddr != "" {
		startDebug(*debugAddr, srv.RefreshObsGauges, errc)
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("listen %s: %v", *listen, err)
		}
		log.Printf("serving wire protocol on %s (%d shards)", ln.Addr(), *shards)
		go func() { errc <- srv.Serve(ln) }()
	}
	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		log.Printf("serving HTTP on %s", *httpAddr)
		go func() { errc <- hs.ListenAndServe() }()
	}
	if err := <-errc; err != nil {
		log.Fatalf("serving: %v", err)
	}
}

// startDebug serves the observability surface — GET /metrics in
// Prometheus text format plus net/http/pprof — on its own address,
// kept off the protocol and HTTP listeners so profiling endpoints are
// never exposed by default. refresh republishes the scrape-time gauges
// before each /metrics render.
func startDebug(addr string, refresh func(), errc chan<- error) {
	ds := &http.Server{Addr: addr, Handler: obs.DebugHandler(refresh), ReadHeaderTimeout: 10 * time.Second}
	log.Printf("serving debug endpoints (/metrics, /debug/pprof) on %s", addr)
	go func() { errc <- ds.ListenAndServe() }()
}
