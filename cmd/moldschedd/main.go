// Command moldschedd is the long-running scheduling daemon: a JSON-lines
// front end over internal/service. It reads one request object per line
// from stdin and writes one response object per line to stdout, so any
// process that can speak pipes can drive it:
//
//	moldschedd < requests.jsonl
//	mkfifo req && moldschedd < req > resp &
//
// Requests ("op" selects the operation):
//
//	{"op":"submit","tag":"a1","algo":"auto","eps":0.1,"validate":false,
//	 "timeout_ms":250,
//	 "instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98}]}}
//	{"op":"result","id":1,"wait":true}
//	{"op":"stats"}
//	{"op":"shutdown"}
//
// Responses echo "op" (and "tag"/"id" where relevant):
//
//	{"op":"submit","tag":"a1","id":1}
//	{"op":"result","id":1,"done":true,"cached":false,"algorithm":"linear",
//	 "makespan":12.5,"lowerbound":11.9,"ratio":1.05,"iterations":7,
//	 "elapsed_ms":0.8,"allot":[3,1]}
//	{"op":"stats","submitted":1,"completed":1,...}
//
// submit replies with a ticket id once the instance is validated; the
// work runs on the service's sharded pool. timeout_ms > 0 sets a
// per-submission deadline: when it expires before the work finishes,
// the ticket completes with a canceled-error result instead of
// blocking forever. result with wait=true answers when the ticket
// completes. Responses are written as they become ready, so they may
// interleave out of request order — submit replies included
// (validation runs off the read loop); correlate submit replies by tag
// and result replies by id. result consumes the ticket. shutdown
// drains in-flight work and exits.
//
// Online sessions (the event-driven arrivals runtime of
// internal/online; DESIGN.md §7) have four further ops:
//
//	{"op":"open_online","tag":"s1","m":64,"policy":"epoch","algo":"auto","eps":0.1}
//	{"op":"arrive","id":2,"t":0.5,"job":{"type":"amdahl","seq":2,"par":98}}
//	{"op":"trace","id":2}
//	{"op":"drain","id":2}
//
// open_online creates a session owning one runtime and returns its
// ticket; arrive admits one timestamped job (timestamps non-decreasing
// per session) and returns the machine events it caused; trace returns
// the session's full event log so far; drain runs the session to
// completion, returns the remaining events plus realized metrics, and
// releases the ticket. Unlike submit/result, the session ops are
// handled on the read loop in request order — a session is stateful
// and its arrivals are meaningful only in sequence.
//
// Error responses carry a stable "code" alongside the human-readable
// "error" text, from the typed taxonomy of internal/scherr:
// "not_monotone", "regime", "canceled", "bad_eps", "internal", plus
// the protocol-level "bad_request" and "unknown_ticket". Clients
// should branch on the code, never the text.
//
// See DESIGN.md §5 for the daemon's place in the serving architecture
// and docs/PROTOCOL.md for the full wire specification.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/online"
	"repro/internal/scherr"
	"repro/internal/service"
)

// Protocol-level error codes, complementing the scherr taxonomy.
const (
	codeBadRequest    = "bad_request"
	codeUnknownTicket = "unknown_ticket"
)

// request is the union of all request shapes.
type request struct {
	Op        string          `json:"op"`
	Tag       string          `json:"tag,omitempty"`
	ID        uint64          `json:"id,omitempty"`
	Wait      bool            `json:"wait,omitempty"`
	Algo      string          `json:"algo,omitempty"`
	Eps       float64         `json:"eps,omitempty"`
	Validate  bool            `json:"validate,omitempty"`
	TimeoutMS float64         `json:"timeout_ms,omitempty"`
	Instance  json.RawMessage `json:"instance,omitempty"`

	// Online-session fields (open_online / arrive).
	M         int             `json:"m,omitempty"`
	Policy    string          `json:"policy,omitempty"`
	EpochMin  float64         `json:"epoch_min,omitempty"`
	EpochGrow float64         `json:"epoch_grow,omitempty"`
	T         float64         `json:"t,omitempty"`
	Job       json.RawMessage `json:"job,omitempty"`
}

// response is the union of all response shapes.
type response struct {
	Op    string `json:"op"`
	Tag   string `json:"tag,omitempty"`
	ID    uint64 `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"` // stable error code (see package comment)

	// result fields
	Done       *bool         `json:"done,omitempty"`
	Cached     bool          `json:"cached,omitempty"`
	Algorithm  string        `json:"algorithm,omitempty"`
	Makespan   moldable.Time `json:"makespan,omitempty"`
	LowerBound moldable.Time `json:"lowerbound,omitempty"`
	Ratio      float64       `json:"ratio,omitempty"`
	Iterations int           `json:"iterations,omitempty"`
	ElapsedMS  float64       `json:"elapsed_ms,omitempty"`
	Allot      []int         `json:"allot,omitempty"`

	// stats payload
	Stats *service.Stats `json:"stats,omitempty"`

	// online-session payloads
	Events    []wireEvent `json:"events,omitempty"`
	MeanWait  float64     `json:"mean_wait,omitempty"`
	MeanFlow  float64     `json:"mean_flow,omitempty"`
	MaxFlow   float64     `json:"max_flow,omitempty"`
	Util      float64     `json:"utilization,omitempty"`
	Replans   int         `json:"replans,omitempty"`
	Fallbacks int         `json:"fallbacks,omitempty"`
	Finished  int         `json:"finished,omitempty"`
}

// wireEvent is the JSON shape of one online.Event. Job is -1 on events
// that concern no single job (replan).
type wireEvent struct {
	T        float64 `json:"t"`
	Kind     string  `json:"kind"`
	Job      int     `json:"job"`
	Procs    int     `json:"procs,omitempty"`
	Free     int     `json:"free"`
	Pending  int     `json:"pending,omitempty"`
	Algo     string  `json:"algo,omitempty"`
	Fallback bool    `json:"fallback,omitempty"`
}

func wireEvents(evs []online.Event) []wireEvent {
	out := make([]wireEvent, len(evs))
	for i, e := range evs {
		out[i] = wireEvent{
			T: e.T, Kind: e.Kind.String(), Job: e.Job, Procs: e.Procs,
			Free: e.Free, Pending: e.Pending, Algo: e.Algo, Fallback: e.Fallback,
		}
	}
	return out
}

// writer serializes concurrent response emission onto stdout.
type writer struct {
	mu  sync.Mutex
	enc *json.Encoder //sched:guardedby mu
}

func (w *writer) send(r response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(r); err != nil {
		log.Fatalf("writing response: %v", err)
	}
}

func main() {
	var (
		workers  = flag.Int("workers", 0, "pool workers (0: GOMAXPROCS)")
		cacheCap = flag.Int("cache", 1024, "result-cache capacity (0: default)")
		memoCap  = flag.Int("memo", 256, "memoized-instance capacity (0: default)")
		memoMB   = flag.Int("memo-mb", 256, "memoized-instance byte budget in MB (0: default)")
		noMemo   = flag.Bool("no-memo", false, "disable oracle memoization")
		noCache  = flag.Bool("no-cache", false, "disable the result cache")
		probes   = flag.Int("probes", 256, "monotonicity probes per submitted job (0: exhaustive)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("moldschedd: ")

	svc := service.New(service.Config{
		Workers:        *workers,
		ResultCacheCap: *cacheCap,
		MemoCap:        *memoCap,
		MemoBudgetMB:   *memoMB,
		NoMemoize:      *noMemo,
		NoResultCache:  *noCache,
	})
	defer svc.Close()

	if err := serve(svc, os.Stdin, os.Stdout, *probes); err != nil {
		log.Fatalf("reading stdin: %v", err)
	}
}

// serve runs the JSON-lines read loop against svc until EOF or a
// shutdown request. Extracted from main so the error paths of the
// protocol — malformed lines, unknown ops, stateful-session misuse —
// are testable in-process; the loop's resilience contract is that no
// request, however malformed, terminates it (only EOF, shutdown, or an
// unreadable stream do).
func serve(svc *service.Scheduler, in io.Reader, w io.Writer, probes int) error {
	out := &writer{enc: json.NewEncoder(w)}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28) // table-backed instances can be large
	var pending sync.WaitGroup               // all async handlers
	var submits sync.WaitGroup               // submit handlers only; see the result case
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			out.send(response{Op: "error", Code: codeBadRequest, Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		switch req.Op {
		case "submit":
			// Validation (O(probes) per job) must not stall request
			// intake; handle off the read loop like result-wait. Clients
			// correlate the reply by tag.
			pending.Add(1)
			submits.Add(1)
			go func(req request) {
				defer pending.Done()
				defer submits.Done()
				handleSubmit(svc, out, req, probes)
			}(req)
		case "result":
			if req.Wait {
				// Waiting must not block the read loop: answer from a
				// goroutine; the response carries the id. Let submits
				// read before this request land first, so a sequential
				// script (submit, then result for its ticket) never
				// races the async submit handler.
				pending.Add(1)
				go func(id uint64) {
					defer pending.Done()
					submits.Wait()
					res, ok := svc.Wait(id)
					sendResult(out, id, res, ok, true)
				}(req.ID)
			} else {
				res, done, known := svc.Poll(req.ID)
				sendResult(out, req.ID, res, known, done)
			}
		case "open_online":
			handleOpenOnline(svc, out, req)
		case "arrive":
			handleArrive(svc, out, req, probes)
		case "trace":
			evs, err := svc.OnlineTrace(req.ID)
			if err != nil {
				out.send(response{Op: "trace", ID: req.ID, Code: codeUnknownTicket, Error: err.Error()})
				continue
			}
			out.send(response{Op: "trace", ID: req.ID, Events: wireEvents(evs)})
		case "drain":
			handleDrain(svc, out, req)
		case "stats":
			st := svc.Stats()
			out.send(response{Op: "stats", Tag: req.Tag, Stats: &st})
		case "shutdown":
			pending.Wait()
			out.send(response{Op: "shutdown", Tag: req.Tag})
			return nil
		default:
			out.send(response{Op: "error", Tag: req.Tag, Code: codeBadRequest, Error: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
	// Wait for in-flight async handlers on EVERY exit path (the
	// shutdown case waits separately before acking): a handler that
	// outlives serve would write into w after the caller has moved on
	// — for an embedder reading a bytes.Buffer, a data race.
	pending.Wait()
	return sc.Err()
}

func handleSubmit(svc *service.Scheduler, out *writer, req request, probes int) {
	algo, err := core.ParseAlgorithm(orDefault(req.Algo, "auto"))
	if err != nil {
		out.send(response{Op: "submit", Tag: req.Tag, Code: codeBadRequest, Error: err.Error()})
		return
	}
	in, err := moldable.UnmarshalInstance(req.Instance)
	if err != nil {
		out.send(response{Op: "submit", Tag: req.Tag, Code: codeBadRequest, Error: fmt.Sprintf("bad instance: %v", err)})
		return
	}
	// Per-submission deadline: created before validation so timeout_ms
	// bounds the monotonicity probing as well as the scheduling; the
	// context then travels with the ticket, so an expired deadline
	// abandons queued work and stops a running dual search at its next
	// probe. The watcher releases the timer as soon as the ticket
	// completes, whoever collects it.
	ctx := context.Background()
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		// Clamp before converting: a huge timeout_ms (client shorthand
		// for "no deadline") would overflow time.Duration to a negative
		// value and cancel the submission instantly.
		ns := req.TimeoutMS * float64(time.Millisecond)
		d := time.Duration(math.MaxInt64)
		if ns < float64(math.MaxInt64) {
			d = time.Duration(ns)
		}
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	if err := in.ValidateCtx(ctx, probes); err != nil {
		if cancel != nil {
			cancel()
		}
		// Every validation failure is a client-input problem: keep the
		// typed codes (not_monotone, canceled, …) but never report
		// "internal" for structural errors like m < 1 — that reads as a
		// server fault.
		code := scherr.Code(err)
		if code == scherr.CodeInternal {
			code = codeBadRequest
		}
		out.send(response{Op: "submit", Tag: req.Tag, Code: code, Error: fmt.Sprintf("invalid instance: %v", err)})
		return
	}
	id := svc.SubmitCtx(ctx, in, core.Options{Algorithm: algo, Eps: req.Eps, Validate: req.Validate})
	if cancel != nil {
		if done, ok := svc.Done(id); ok {
			go func() {
				<-done
				cancel()
			}()
		} else {
			cancel()
		}
	}
	out.send(response{Op: "submit", Tag: req.Tag, ID: id})
}

// handleOpenOnline creates an online session. Runs on the read loop:
// session ops are order-dependent (see the package comment).
func handleOpenOnline(svc *service.Scheduler, out *writer, req request) {
	algo, err := core.ParseAlgorithm(orDefault(req.Algo, "auto"))
	if err != nil {
		out.send(response{Op: "open_online", Tag: req.Tag, Code: codeBadRequest, Error: err.Error()})
		return
	}
	policy, err := online.ParsePolicy(orDefault(req.Policy, "epoch"))
	if err != nil {
		out.send(response{Op: "open_online", Tag: req.Tag, Code: codeBadRequest, Error: err.Error()})
		return
	}
	id, err := svc.OpenOnline(online.Config{
		M: req.M, Policy: policy, Algorithm: algo, Eps: req.Eps,
		EpochMin: req.EpochMin, EpochGrow: req.EpochGrow,
	})
	if err != nil {
		code := scherr.Code(err)
		if code == scherr.CodeInternal {
			code = codeBadRequest // config problems are client input, not server faults
		}
		out.send(response{Op: "open_online", Tag: req.Tag, Code: code, Error: err.Error()})
		return
	}
	out.send(response{Op: "open_online", Tag: req.Tag, ID: id})
}

// handleArrive admits one arrival into a session.
func handleArrive(svc *service.Scheduler, out *writer, req request, probes int) {
	if len(req.Job) == 0 {
		out.send(response{Op: "arrive", ID: req.ID, Code: codeBadRequest, Error: "arrive needs a job"})
		return
	}
	job, err := moldable.UnmarshalJob(req.Job)
	if err != nil {
		out.send(response{Op: "arrive", ID: req.ID, Code: codeBadRequest, Error: fmt.Sprintf("bad job: %v", err)})
		return
	}
	// Same admission checks as submit: a non-monotone job must be
	// rejected at the door, not poison the session's planner later.
	// Probe over the session's machine size.
	m, err := svc.OnlineMachine(req.ID)
	if err != nil {
		out.send(response{Op: "arrive", ID: req.ID, Code: codeUnknownTicket, Error: err.Error()})
		return
	}
	if err := moldable.CheckMonotone(job, m, probes); err != nil {
		out.send(response{Op: "arrive", ID: req.ID, Code: scherr.Code(err), Error: fmt.Sprintf("invalid job: %v", err)})
		return
	}
	evs, err := svc.OnlineArrive(context.Background(), req.ID, online.Arrival{T: req.T, Job: job})
	if err != nil {
		out.send(response{Op: "arrive", ID: req.ID, Code: onlineCode(err), Error: err.Error(), Events: wireEvents(evs)})
		return
	}
	out.send(response{Op: "arrive", ID: req.ID, Events: wireEvents(evs)})
}

// handleDrain runs a session to completion and reports its metrics.
func handleDrain(svc *service.Scheduler, out *writer, req request) {
	evs, met, err := svc.OnlineDrain(context.Background(), req.ID)
	if err != nil {
		out.send(response{Op: "drain", ID: req.ID, Code: onlineCode(err), Error: err.Error(), Events: wireEvents(evs)})
		return
	}
	out.send(response{
		Op: "drain", ID: req.ID, Events: wireEvents(evs),
		Makespan: met.Makespan, MeanWait: met.MeanWait, MeanFlow: met.MeanFlow,
		MaxFlow: met.MaxFlow, Util: met.Utilization,
		Replans: met.Replans, Fallbacks: met.Fallbacks, Finished: met.Finished,
	})
}

// onlineCode maps a session-op error to a wire code: unknown sessions
// get the ticket code, runtime stream violations (out-of-order
// arrivals, arrival-after-drain) are client input, and the typed
// taxonomy passes through.
func onlineCode(err error) string {
	if errors.Is(err, service.ErrUnknownSession) {
		return codeUnknownTicket
	}
	if code := scherr.Code(err); code != scherr.CodeInternal {
		return code
	}
	return codeBadRequest
}

func sendResult(out *writer, id uint64, res service.Result, known, done bool) {
	if !known {
		out.send(response{Op: "result", ID: id, Code: codeUnknownTicket, Error: "unknown or already-collected ticket"})
		return
	}
	resp := response{Op: "result", ID: id, Done: &done}
	if !done {
		out.send(resp)
		return
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
		resp.Code = scherr.Code(res.Err)
		out.send(resp)
		return
	}
	resp.Cached = res.Cached
	rep := res.Report
	resp.Algorithm = rep.Algorithm.String()
	resp.Makespan = rep.Makespan
	resp.LowerBound = rep.LowerBound
	resp.Ratio = rep.Ratio
	resp.Iterations = rep.Iterations
	resp.ElapsedMS = float64(rep.Elapsed.Microseconds()) / 1000
	resp.Allot = res.Schedule.Allotment(len(res.Schedule.Placements))
	out.send(resp)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
