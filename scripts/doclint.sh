#!/usr/bin/env sh
# doclint: assert every internal/* package (and cmd/* program) carries a
# package-level godoc comment, so the documentation audit of ISSUE 3
# cannot rot. CI runs this next to `go vet`.
#
# A package comment is a line starting with "// Package <name>" (or
# "// Command <name>" for main packages) in some .go file of the
# directory.
set -eu

cd "$(dirname "$0")/.."

fail=0

for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -ls "^// Package $pkg" "$dir"*.go >/dev/null 2>&1; then
        echo "doclint: internal package '$pkg' has no '// Package $pkg' comment" >&2
        fail=1
    fi
done

for dir in cmd/*/; do
    prog=$(basename "$dir")
    if ! grep -ls "^// Command $prog" "$dir"*.go >/dev/null 2>&1; then
        echo "doclint: command '$prog' has no '// Command $prog' comment" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "doclint: FAILED — add the missing package comments (see docs style in internal/compress)" >&2
    exit 1
fi
echo "doclint: all internal packages and commands documented"
