//lint:file-ignore SA1019 This file exercises the deprecated free-function
// shims on purpose: they must keep compiling and working until removed.

package repro_test

import (
	"testing"

	"repro"
	"repro/internal/moldable"
)

// The facade must round-trip the common workflow without touching
// internal packages beyond moldable. These are the deprecated shims;
// the Client API equivalents live in client_test.go.
func TestFacadeSchedule(t *testing.T) {
	in := &moldable.Instance{
		M: 64,
		Jobs: []moldable.Job{
			moldable.Amdahl{Seq: 2, Par: 98},
			moldable.PerfectSpeedup{W: 512},
			moldable.Sequential{T: 7},
		},
	}
	s, rep, err := repro.Schedule(in, repro.Options{Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if rep.Guarantee <= 1 || rep.Makespan <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
}

func TestFacadeEstimateAndTwoApprox(t *testing.T) {
	pl := moldable.Planted(moldable.PlantedConfig{M: 32, D: 50, Seed: 3, MaxJobs: 12})
	est := repro.Estimate(pl.Instance)
	if est.Omega > pl.OPT*(1+1e-9) {
		t.Errorf("ω=%v exceeds OPT=%v", est.Omega, pl.OPT)
	}
	s, res := repro.TwoApprox(pl.Instance)
	if err := repro.Validate(pl.Instance, s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() > 2*res.Omega*(1+1e-9) {
		t.Errorf("2-approx makespan %v > 2ω", s.Makespan())
	}
}

func TestFacadeAlgorithmConstants(t *testing.T) {
	in := &moldable.Instance{M: 8, Jobs: []moldable.Job{moldable.Sequential{T: 1}}}
	for _, a := range []repro.Algorithm{repro.LT2, repro.MRT, repro.Alg1, repro.Alg3, repro.Linear} {
		if _, _, err := repro.Schedule(in, repro.Options{Algorithm: a, Eps: 0.5}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestFacadePTAS(t *testing.T) {
	pl := moldable.Planted(moldable.PlantedConfig{M: 1 << 12, D: 30, Seed: 4, MaxJobs: 8})
	s, _, err := repro.PTAS(pl.Instance, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() > 1.5*pl.OPT*(1+1e-9) {
		t.Errorf("PTAS ratio %.3f", s.Makespan()/pl.OPT)
	}
}
