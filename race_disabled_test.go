//go:build !race

package repro_test

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
