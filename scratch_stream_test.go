package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/moldable"
)

// TestScheduleStreamPooledScratchIdentical is the buffer-reuse
// acceptance test of ISSUE 3: concurrent ScheduleStream over ≥ 64
// instances — every worker reusing its pooled scratch across many
// submissions — must produce byte-identical schedules to the unpooled
// single-call path. Run under -race (CI does) this also proves the
// per-worker scratch keying is data-race free.
func TestScheduleStreamPooledScratchIdentical(t *testing.T) {
	const n = 80
	ins := make([]*moldable.Instance, n)
	for i := range ins {
		// Vary shape and regime so FPTAS, Linear, and knapsack paths
		// all run, and workers see interleaved shapes that would
		// expose stale scratch state.
		cfg := moldable.GenConfig{N: 8 + i%29, M: 16 << (i % 9), Seed: uint64(1000 + i)}
		ins[i] = moldable.Random(cfg)
	}
	opt := core.Options{Algorithm: core.Auto, Eps: 0.25}

	// Unpooled reference: fresh buffers per call, no service stack.
	want := make([]*repro.ScheduleResult, n)
	for i, in := range ins {
		s, _, err := core.Schedule(in, opt)
		if err != nil {
			t.Fatalf("unpooled #%d: %v", i, err)
		}
		want[i] = s
	}

	// Pooled: the full client stack (sharded pool, per-worker scratch).
	// The result cache is disabled so every submission really computes
	// on a worker's scratch; three passes make every worker reuse its
	// buffers many times.
	c := repro.New(repro.WithEps(0.25), repro.WithoutResultCache(), repro.WithoutMemoization())
	defer c.Close()
	for pass := 0; pass < 3; pass++ {
		seen := 0
		for i, r := range c.ScheduleStream(context.Background(), ins) {
			if r.Err != nil {
				t.Fatalf("pass %d #%d: %v", pass, i, r.Err)
			}
			if r.Schedule.M != want[i].M || !reflect.DeepEqual(r.Schedule.Placements, want[i].Placements) {
				t.Fatalf("pass %d #%d: pooled schedule differs from unpooled\npooled:   %v\nunpooled: %v",
					pass, i, r.Schedule, want[i])
			}
			seen++
		}
		if seen != n {
			t.Fatalf("pass %d: stream yielded %d/%d results", pass, seen, n)
		}
	}
}

// TestScheduleStreamConvPooledScratchIdentical extends the ISSUE-3
// byte-identity guard to the Conv algorithm (ISSUE 5): concurrent
// conv-pinned streaming over instances spanning both conv regimes
// (knapsack m < 32n and compressed-wide m ≥ 32n) must match the
// unpooled single-call path placement for placement. Under -race (CI)
// this also proves the convolution engine's per-worker scratch arenas
// are data-race free.
func TestScheduleStreamConvPooledScratchIdentical(t *testing.T) {
	const n = 64
	ins := make([]*moldable.Instance, n)
	for i := range ins {
		// M from 64 to 8192 — always ≥ ConvMinM, both regimes hit.
		cfg := moldable.GenConfig{N: 4 + i%23, M: 64 << (i % 8), Seed: uint64(7000 + i)}
		ins[i] = moldable.Random(cfg)
	}
	opt := core.Options{Algorithm: core.Conv, Eps: 0.25}

	want := make([]*repro.ScheduleResult, n)
	for i, in := range ins {
		s, _, err := core.Schedule(in, opt)
		if err != nil {
			t.Fatalf("unpooled #%d: %v", i, err)
		}
		want[i] = s
	}

	c := repro.New(repro.WithEps(0.25), repro.WithAlgorithm(repro.Conv),
		repro.WithoutResultCache(), repro.WithoutMemoization())
	defer c.Close()
	for pass := 0; pass < 3; pass++ {
		seen := 0
		for i, r := range c.ScheduleStream(context.Background(), ins) {
			if r.Err != nil {
				t.Fatalf("pass %d #%d: %v", pass, i, r.Err)
			}
			if r.Schedule.M != want[i].M || !reflect.DeepEqual(r.Schedule.Placements, want[i].Placements) {
				t.Fatalf("pass %d #%d: pooled conv schedule differs from unpooled", pass, i)
			}
			seen++
		}
		if seen != n {
			t.Fatalf("pass %d: stream yielded %d/%d results", pass, seen, n)
		}
	}
}

// TestServiceResultsStableAfterScratchReuse guards the ownership
// contract at the service boundary: results handed out (and cached)
// must be clones, not views into a worker's scratch, so later
// submissions on the same worker must not mutate them.
func TestServiceResultsStableAfterScratchReuse(t *testing.T) {
	c := repro.New(repro.WithEps(0.25))
	defer c.Close()
	ctx := context.Background()
	first := moldable.Random(moldable.GenConfig{N: 30, M: 128, Seed: 5})
	s1, _, err := c.Schedule(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := s1.Clone()
	// Hammer the pool with different instances; if s1 aliased a
	// worker's scratch, some placement would change underneath us.
	for i := 0; i < 64; i++ {
		in := moldable.Random(moldable.GenConfig{N: 20 + i%17, M: 64 << (i % 5), Seed: uint64(i)})
		if _, _, err := c.Schedule(ctx, in, repro.WithAlgorithm(repro.Linear)); err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(s1.Placements, snapshot.Placements) {
		t.Fatal("cached/returned schedule mutated by later submissions: scratch leaked past the service boundary")
	}
}
