package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/online"
)

// onlineBenchTrace is the ISSUE 4 throughput workload: 4096 arrivals
// for an m=1024 machine. Shared across the benchmark and the
// throughput-floor test.
func onlineBenchTrace(tb testing.TB) []online.Arrival {
	tb.Helper()
	trace, err := online.Generate(online.TraceConfig{
		N: 4096, Seed: 42, Process: online.Poisson, Rate: 8,
		Jobs: moldable.GenConfig{MinWork: 1, MaxWork: 500},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return trace
}

// BenchmarkOnline_Throughput measures the online runtime's sustained
// arrival rate (arrivals/sec) on the n=4096, m=1024 reference trace,
// per policy. One op = one full replay (arrivals + drain) on a warm,
// Reset runtime — the steady state of a long-running server. The
// acceptance bar is ≥ 10k arrivals/sec with zero steady-state allocs
// on the epoch-replan path (the allocs/op column, gated via
// BENCH_PR4.json).
func BenchmarkOnline_Throughput(b *testing.B) {
	trace := onlineBenchTrace(b)
	ctx := context.Background()
	// Only the epoch policy is benchmarked: ReplanOnArrival and Greedy
	// replan a growing backlog on every single arrival (quadratic in
	// the stream length by design — they are latency/baseline policies,
	// not throughput policies) and would dominate the bench wall-clock
	// without informing the gate.
	for _, cfg := range []struct {
		name string
		pol  online.Policy
	}{
		{"epoch", online.ReplanOnEpoch},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt, err := online.New(online.Config{M: 1024, Policy: cfg.pol, Algorithm: core.Linear, Eps: 0.25})
			if err != nil {
				b.Fatal(err)
			}
			replay := func() {
				rt.Reset()
				for i := range trace {
					if _, err := rt.Arrive(ctx, trace[i]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := rt.Drain(ctx); err != nil {
					b.Fatal(err)
				}
			}
			replay() // warm the scratch and buffers outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay()
			}
			b.StopTimer()
			b.ReportMetric(float64(len(trace)*b.N)/b.Elapsed().Seconds(), "arrivals/sec")
		})
	}
}

// TestOnlineThroughputFloor asserts the ISSUE 4 acceptance bar outside
// the benchmark harness so CI enforces it: ≥ 10k arrivals/sec on the
// reference trace. The bar is checked without the race detector only —
// -race instruments every memory access and throughput numbers under it
// say nothing about production speed.
func TestOnlineThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput floor is not -short material")
	}
	trace := onlineBenchTrace(t)
	ctx := context.Background()
	rt, err := online.New(online.Config{M: 1024, Policy: online.ReplanOnEpoch, Algorithm: core.Linear, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	replay := func() {
		rt.Reset()
		for i := range trace {
			if _, err := rt.Arrive(ctx, trace[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rt.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm
	start := time.Now()
	const reps = 3
	for i := 0; i < reps; i++ {
		replay()
	}
	perSec := float64(reps*len(trace)) / time.Since(start).Seconds()
	t.Logf("online epoch policy: %.0f arrivals/sec (n=%d, m=1024)", perSec, len(trace))
	if raceEnabled {
		t.Skipf("race detector active: measured %.0f arrivals/sec, floor not enforced", perSec)
	}
	if perSec < 10_000 {
		t.Fatalf("throughput %.0f arrivals/sec below the 10k floor", perSec)
	}
}
