package repro_test

import (
	"context"
	"errors"
	"iter"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/moldable"
	"repro/internal/online"
)

func onlineTrace(t testing.TB, n int, seed uint64) []online.Arrival {
	t.Helper()
	trace, err := online.Generate(online.TraceConfig{
		N: n, Seed: seed, Process: online.Poisson, Rate: 4,
		Jobs: moldable.GenConfig{MinWork: 1, MaxWork: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func sliceSeq(trace []online.Arrival) iter.Seq[online.Arrival] {
	return func(yield func(online.Arrival) bool) {
		for _, a := range trace {
			if !yield(a) {
				return
			}
		}
	}
}

// TestRunOnlineRoundTrip: a full stream through the client — every
// arrival admitted, every job finished, event indices contiguous.
func TestRunOnlineRoundTrip(t *testing.T) {
	c := repro.New(repro.WithEps(0.25), repro.WithMachines(32))
	defer c.Close()
	trace := onlineTrace(t, 80, 21)
	events, err := c.RunOnline(context.Background(), sliceSeq(trace))
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, finishes := 0, 0
	for i, e := range events {
		if i != wantIdx {
			t.Fatalf("event index %d, want %d", i, wantIdx)
		}
		wantIdx++
		if e.Kind == repro.EvError {
			t.Fatalf("unexpected error event: %v", e.Err)
		}
		if e.Kind == repro.EvFinish {
			finishes++
		}
	}
	if finishes != len(trace) {
		t.Fatalf("finished %d of %d jobs", finishes, len(trace))
	}
}

// TestRunOnlineConfigErrors: configuration problems surface on the
// error return, before any arrival is consumed.
func TestRunOnlineConfigErrors(t *testing.T) {
	c := repro.New()
	defer c.Close()
	consumed := false
	poisoned := func(yield func(online.Arrival) bool) { consumed = true }
	if _, err := c.RunOnline(context.Background(), poisoned); err == nil {
		t.Error("missing WithMachines accepted")
	}
	if _, err := c.RunOnline(context.Background(), poisoned, repro.WithMachines(8), repro.WithEps(3)); !errors.Is(err, repro.ErrBadEps) {
		t.Errorf("eps=3 error %v, want ErrBadEps", err)
	}
	if consumed {
		t.Error("arrival source consumed despite config error")
	}
}

// TestRunOnlineCancelMidStream is the ISSUE 4 cancellation criterion,
// mirroring scratch_stream_test.go's pattern: a mid-stream ctx cancel
// must terminate the event stream promptly with a final EvError
// matching ErrCanceled, drain the runtime machinery, and leak no
// goroutines (iter.Pull's coroutine included) — run under -race in CI.
func TestRunOnlineCancelMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	trace := onlineTrace(t, 200, 5)
	c := repro.New(repro.WithEps(0.25), repro.WithMachines(64), repro.WithPolicy(repro.ReplanOnArrival))
	ctx, cancel := context.WithCancel(context.Background())
	events, err := c.RunOnline(ctx, sliceSeq(trace))
	if err != nil {
		t.Fatal(err)
	}
	sawError := false
	arrivals := 0
	for _, e := range events {
		if e.Kind == repro.EvArrive {
			arrivals++
			if arrivals == 50 {
				cancel()
			}
		}
		if e.Kind == repro.EvError {
			sawError = true
			if !errors.Is(e.Err, repro.ErrCanceled) || !errors.Is(e.Err, context.Canceled) {
				t.Fatalf("terminal event error %v, want ErrCanceled/context.Canceled", e.Err)
			}
		} else if sawError {
			t.Fatal("events after the terminal EvError")
		}
	}
	if !sawError {
		t.Fatal("canceled stream ended without an EvError event")
	}
	if arrivals >= len(trace) {
		t.Fatal("cancellation did not stop arrival consumption")
	}
	c.Close()
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after canceled RunOnline", before, after)
	}
}

// TestRunOnlineEarlyBreak: a consumer breaking out of the event loop
// releases the arrival source (iter.Pull coroutine) without leaks.
func TestRunOnlineEarlyBreak(t *testing.T) {
	before := runtime.NumGoroutine()
	trace := onlineTrace(t, 120, 6)
	c := repro.New(repro.WithEps(0.25), repro.WithMachines(32))
	events, err := c.RunOnline(context.Background(), sliceSeq(trace))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		_ = e
		if i == 25 {
			break
		}
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after early break", before, after)
	}
}

// TestRunOnlineDeterministic: same trace + same options ⇒ identical
// event sequence through the public API (the trace-level determinism
// test lives in internal/online; this one covers the client plumbing).
func TestRunOnlineDeterministic(t *testing.T) {
	trace := onlineTrace(t, 100, 77)
	collect := func() []repro.OnlineEvent {
		c := repro.New(repro.WithEps(0.25), repro.WithMachines(48), repro.WithEpochRule(0.5, 2))
		defer c.Close()
		events, err := c.RunOnline(context.Background(), sliceSeq(trace))
		if err != nil {
			t.Fatal(err)
		}
		var out []repro.OnlineEvent
		for _, e := range events {
			out = append(out, e)
		}
		return out
	}
	a, b := collect(), collect()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical RunOnline replays diverged")
	}
}

// TestRunOnlineRejectsBadStream: an out-of-order arrival mid-stream
// terminates with EvError rather than a panic or silent truncation.
func TestRunOnlineRejectsBadStream(t *testing.T) {
	c := repro.New(repro.WithMachines(8))
	defer c.Close()
	bad := []online.Arrival{
		{T: 2, Job: moldable.Sequential{T: 1}},
		{T: 1, Job: moldable.Sequential{T: 1}},
	}
	events, err := c.RunOnline(context.Background(), sliceSeq(bad))
	if err != nil {
		t.Fatal(err)
	}
	last := repro.OnlineEvent{}
	for _, e := range events {
		last = e
	}
	if last.Kind != repro.EvError || last.Err == nil {
		t.Fatalf("stream ended with %v, want EvError", last.Kind)
	}
}
