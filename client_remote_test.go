package repro_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/moldable"
	"repro/internal/netserve"
	"repro/internal/service"
)

// Remote-transport tests: the public Client driving a moldschedd-style
// netserve.Server over a real TCP socket via WithDial, including the
// chaos case the serving layer must survive — a backend shard dying
// while a ScheduleStream is in flight.

// startRemoteServer boots a sharded server on a loopback listener.
func startRemoteServer(t *testing.T, shards, workers int) (*netserve.Server, string) {
	t.Helper()
	srv := netserve.NewServer(context.Background(), netserve.ServerConfig{
		Shards:  shards,
		Service: service.Config{Workers: workers},
		Probes:  64,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// remoteInstanceFor fabricates distinct heavyweight instances until one
// hashes to the wanted shard.
func remoteInstanceFor(t *testing.T, srv *netserve.Server, want, jobs, salt int) *moldable.Instance {
	t.Helper()
	for i := 0; i < 10000; i++ {
		in := &moldable.Instance{M: 256}
		for j := 0; j < jobs; j++ {
			in.Jobs = append(in.Jobs, moldable.Amdahl{
				Seq: 1 + float64(salt), Par: 90 + float64(i) + float64(j%7),
			})
		}
		if srv.Router().ShardOf(in) == want {
			return in
		}
	}
	t.Fatal("could not fabricate an instance for the wanted shard")
	return nil
}

func waitNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteSchedule pins the WithDial round trip end to end: the
// public Schedule call yields a full schedule and report computed by
// the remote fleet, indistinguishable (but for transport) from local.
func TestRemoteSchedule(t *testing.T) {
	_, addr := startRemoteServer(t, 2, 2)
	c := repro.New(repro.WithDial(addr), repro.WithTenant("t1"))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	in := &moldable.Instance{M: 64, Jobs: []moldable.Job{
		moldable.Amdahl{Seq: 2, Par: 98},
		moldable.Power{W: 50, Alpha: 0.8},
	}}
	s, rep, err := c.Schedule(ctx, in, repro.WithEps(0.25))
	if err != nil {
		t.Fatalf("remote schedule: %v", err)
	}
	if rep == nil || !(rep.Makespan > 0) || !(rep.Ratio > 0) {
		t.Fatalf("remote report: %+v", rep)
	}
	if s == nil || len(s.Placements) != in.N() {
		t.Fatalf("remote schedule placements: %+v", s)
	}
	for _, p := range s.Placements {
		if p.Procs < 1 || p.Duration <= 0 {
			t.Fatalf("placement %+v not populated from the wire", p)
		}
	}
	// The server's counters moved, visible through the same client.
	st, err := c.StatsCtx(ctx)
	if err != nil {
		t.Fatalf("remote stats: %v", err)
	}
	if st.Submitted < 1 || st.Completed < 1 {
		t.Fatalf("remote stats after one submission: %+v", st)
	}
}

// TestRemoteScheduleStreamShardKilled is the chaos satellite at the
// public-API level: a shard dies while a ScheduleStream is mid-flight.
// The stream must still yield exactly one Result per instance — each
// either successful or a typed ErrUnavailable, never a hang or an
// untyped failure — and the client must shut down without leaking
// goroutines.
func TestRemoteScheduleStreamShardKilled(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, addr := startRemoteServer(t, 3, 1) // one worker per shard: the burst queues
	c := repro.New(repro.WithDial(addr))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const victim = 0
	const burst = 32
	ins := make([]*moldable.Instance, burst)
	for i := range ins {
		ins[i] = remoteInstanceFor(t, srv, victim, 400, i)
	}

	var ok, unavailable, yields int
	killed := false
	for _, r := range c.ScheduleStream(ctx, ins, repro.WithEps(0.1)) {
		yields++
		if !killed {
			// First completion: the other 31 are still queued behind the
			// victim's single worker. Kill it now — mid-stream by
			// construction.
			srv.Router().Kill(victim)
			killed = true
		}
		switch {
		case r.Err == nil:
			ok++
		case errors.Is(r.Err, repro.ErrUnavailable):
			unavailable++
		default:
			t.Fatalf("stream result: error is not typed unavailable: %v", r.Err)
		}
	}
	if yields != burst {
		t.Fatalf("stream yielded %d results, want %d", yields, burst)
	}
	if unavailable == 0 {
		t.Fatalf("all %d results outran the kill (ok=%d); the burst must be heavier", burst, ok)
	}
	t.Logf("stream of %d: %d completed, %d typed unavailable", burst, ok, unavailable)

	// Survivors keep serving through the same client.
	for _, shard := range []int{1, 2} {
		in := remoteInstanceFor(t, srv, shard, 2, 1000+shard)
		if _, _, err := c.Schedule(ctx, in, repro.WithEps(0.25)); err != nil {
			t.Fatalf("post-kill schedule on shard %d: %v", shard, err)
		}
	}

	c.Close()
	srv.Close()
	waitNoGoroutineLeak(t, base)
}

// TestRemoteRunOnline replays an arrival stream through a remote
// session: same event contract as the local path, finishing every job.
func TestRemoteRunOnline(t *testing.T) {
	_, addr := startRemoteServer(t, 2, 2)
	c := repro.New(repro.WithDial(addr))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	arrivals := func(yield func(repro.Arrival) bool) {
		for i := 0; i < 3; i++ {
			if !yield(repro.Arrival{T: moldable.Time(i), Job: moldable.Amdahl{Seq: 2, Par: 40 + float64(i)}}) {
				return
			}
		}
	}
	seq, err := c.RunOnline(ctx, arrivals, repro.WithMachines(64), repro.WithEps(0.5))
	if err != nil {
		t.Fatalf("remote online: %v", err)
	}
	kinds := map[int]int{}
	prev := -1
	for i, e := range seq {
		if i != prev+1 {
			t.Fatalf("event indices not sequential: %d after %d", i, prev)
		}
		prev = i
		if e.Kind == repro.EvError {
			t.Fatalf("remote online event error: %v", e.Err)
		}
		kinds[int(e.Kind)]++
	}
	if kinds[int(repro.EvArrive)] != 3 || kinds[int(repro.EvFinish)] != 3 {
		t.Fatalf("remote online events: %v", kinds)
	}
}

// TestRemoteRunOnlineShardKilled kills the session's shard between two
// arrivals: the stream must terminate with one EvError event carrying a
// typed ErrUnavailable, not hang or die untyped.
func TestRemoteRunOnlineShardKilled(t *testing.T) {
	srv, addr := startRemoteServer(t, 1, 1)
	c := repro.New(repro.WithDial(addr))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	arrivals := func(yield func(repro.Arrival) bool) {
		if !yield(repro.Arrival{T: 0, Job: moldable.Amdahl{Seq: 2, Par: 40}}) {
			return
		}
		srv.Router().Kill(0) // the only shard: the session is orphaned
		yield(repro.Arrival{T: 1, Job: moldable.Amdahl{Seq: 2, Par: 41}})
	}
	seq, err := c.RunOnline(ctx, arrivals, repro.WithMachines(64), repro.WithEps(0.5))
	if err != nil {
		t.Fatalf("remote online: %v", err)
	}
	var last repro.OnlineEvent
	for _, e := range seq {
		last = e
	}
	if last.Kind != repro.EvError {
		t.Fatalf("stream did not terminate in EvError: %+v", last)
	}
	if !errors.Is(last.Err, repro.ErrUnavailable) {
		t.Fatalf("terminal event error: %v, want ErrUnavailable", last.Err)
	}
}

// TestRemoteDialFailure pins the failure shape of an unreachable
// server: the error surfaces on the call, typed by the transport.
func TestRemoteDialFailure(t *testing.T) {
	c := repro.New(repro.WithDial("127.0.0.1:1")) // nothing listens on port 1
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	in := &moldable.Instance{M: 8, Jobs: []moldable.Job{moldable.PerfectSpeedup{W: 8}}}
	if _, _, err := c.Schedule(ctx, in); err == nil {
		t.Fatal("schedule against a dead address succeeded")
	}
}
