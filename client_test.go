package repro_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/moldable"
)

// cancelJob wraps a job's oracle so its first probe cancels a context:
// a deterministic mid-batch cancellation fuse.
type cancelJob struct {
	moldable.Job
	cancel context.CancelFunc
}

func (c cancelJob) Time(p int) moldable.Time {
	c.cancel()
	return c.Job.Time(p)
}

func testInstances(n int) []*moldable.Instance {
	ins := make([]*moldable.Instance, n)
	for i := range ins {
		ins[i] = moldable.Random(moldable.GenConfig{N: 16, M: 256, Seed: uint64(i + 1)})
	}
	return ins
}

func TestClientScheduleRoundTrip(t *testing.T) {
	c := repro.New(repro.WithEps(0.25), repro.WithAlgorithm(repro.Linear))
	defer c.Close()
	ctx := context.Background()
	in := testInstances(1)[0]
	if err := c.Validate(ctx, in); err != nil {
		t.Fatal(err)
	}
	s, rep, err := c.Schedule(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateSchedule(ctx, in, s); err != nil {
		t.Fatal(err)
	}
	if rep.Guarantee <= 1 || rep.Makespan <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	est, err := c.Estimate(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if est.Omega <= 0 || s.Makespan() > 2*est.Omega*(1+1e-9) {
		t.Errorf("estimate ω=%v inconsistent with makespan %v", est.Omega, s.Makespan())
	}
}

// TestClientPerCallOptions: per-call options override client defaults
// without mutating them.
func TestClientPerCallOptions(t *testing.T) {
	c := repro.New(repro.WithAlgorithm(repro.Linear), repro.WithEps(0.5))
	defer c.Close()
	ctx := context.Background()
	in := testInstances(1)[0]
	_, rep, err := c.Schedule(ctx, in, repro.WithAlgorithm(repro.LT2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != repro.LT2 {
		t.Errorf("per-call algorithm ignored: ran %v", rep.Algorithm)
	}
	_, rep, err = c.Schedule(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != repro.Linear {
		t.Errorf("client default clobbered by per-call option: ran %v", rep.Algorithm)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := repro.New()
	defer c.Close()
	ctx := context.Background()
	in := testInstances(1)[0]

	if _, _, err := c.Schedule(ctx, in, repro.WithEps(1.5)); !errors.Is(err, repro.ErrBadEps) {
		t.Errorf("eps=1.5: %v, want ErrBadEps", err)
	}

	small := moldable.Random(moldable.GenConfig{N: 64, M: 8, Seed: 3})
	_, _, err := c.Schedule(ctx, small, repro.WithAlgorithm(repro.FPTAS), repro.WithEps(0.5))
	if !errors.Is(err, repro.ErrRegime) {
		t.Fatalf("out-of-regime FPTAS: %v, want ErrRegime", err)
	}
	var re *repro.RegimeError
	if !errors.As(err, &re) || re.MinM <= re.M {
		t.Errorf("regime error lacks the violated bound: %v", err)
	}

	bad := &moldable.Instance{M: 64, Jobs: []moldable.Job{
		moldable.Table{T: []moldable.Time{1, 5, 9}}, // time increases
	}}
	if err := c.Validate(ctx, bad); !errors.Is(err, repro.ErrNotMonotone) {
		t.Errorf("non-monotone instance: %v, want ErrNotMonotone", err)
	}

	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := c.Validate(dead, in); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("canceled Validate: %v, want ErrCanceled", err)
	}
	if _, err := c.Estimate(dead, in); !errors.Is(err, repro.ErrCanceled) {
		t.Errorf("canceled Estimate: %v, want ErrCanceled", err)
	}
}

// TestClientScheduleStream consumes a full stream: every index arrives
// exactly once, results match the instances.
func TestClientScheduleStream(t *testing.T) {
	c := repro.New(repro.WithEps(0.25), repro.WithAlgorithm(repro.Linear))
	defer c.Close()
	const n = 32
	ins := testInstances(n)
	seen := make([]bool, n)
	for i, r := range c.ScheduleStream(context.Background(), ins) {
		if seen[i] {
			t.Fatalf("index %d yielded twice", i)
		}
		seen[i] = true
		if r.Err != nil {
			t.Errorf("instance %d: %v", i, r.Err)
			continue
		}
		if err := c.ValidateSchedule(context.Background(), ins[i], r.Schedule); err != nil {
			t.Errorf("instance %d: invalid schedule: %v", i, err)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("index %d never yielded", i)
		}
	}
}

// TestClientScheduleStreamCancel is the acceptance test of the redesign:
// canceling a stream over ≥ 64 instances stops new work, yields
// ErrCanceled (unwrapping to context.Canceled) for every unstarted
// instance while keeping finished results, and leaks no goroutines
// after Close.
func TestClientScheduleStreamCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	// One worker serializes the batch in submission order; instance
	// fuse's oracle cancels the context at its first probe, so
	// instances beyond it are provably unstarted when the cancel lands.
	c := repro.New(repro.WithWorkers(1), repro.WithEps(0.25), repro.WithAlgorithm(repro.Linear))
	const n = 96
	const fuse = 5
	ins := testInstances(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ins[fuse].Jobs[0] = cancelJob{Job: ins[fuse].Jobs[0], cancel: cancel}

	var done, canceled int
	yielded := 0
	for i, r := range c.ScheduleStream(ctx, ins) {
		yielded++
		switch {
		case r.Err == nil:
			if r.Schedule == nil {
				t.Errorf("instance %d: success without schedule", i)
			}
			done++
		case errors.Is(r.Err, repro.ErrCanceled):
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("instance %d: ErrCanceled does not unwrap to context.Canceled", i)
			}
			canceled++
		default:
			t.Errorf("instance %d: unexpected error %v", i, r.Err)
		}
	}
	if yielded != n {
		t.Fatalf("stream yielded %d of %d pairs", yielded, n)
	}
	if done == 0 {
		t.Error("no instance finished before the cancel")
	}
	if canceled == 0 {
		t.Error("no instance reported ErrCanceled")
	}
	// "Stops issuing new work": only instances submitted before the fuse
	// (plus the fuse itself, had it squeaked through) may complete.
	if done > fuse+1 {
		t.Errorf("%d instances completed, want ≤ %d: new work kept starting after cancel", done, fuse+1)
	}
	if done+canceled != n {
		t.Errorf("done=%d + canceled=%d ≠ %d", done, canceled, n)
	}

	c.Close()
	// The stream's collector goroutines drain into a buffered channel
	// and exit; give the runtime a moment, then require no leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after Close", before, after)
	}
}

// TestClientStreamEarlyBreak: breaking out of the stream must not leak
// goroutines or deadlock Close.
func TestClientStreamEarlyBreak(t *testing.T) {
	before := runtime.NumGoroutine()
	c := repro.New(repro.WithWorkers(2), repro.WithEps(0.25), repro.WithAlgorithm(repro.Linear))
	ins := testInstances(24)
	got := 0
	for range c.ScheduleStream(context.Background(), ins) {
		got++
		if got == 3 {
			break
		}
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked after early break: %d before, %d after", before, after)
	}
}

// TestClientCacheAcrossCalls: the second identical submission is served
// from the result cache.
func TestClientCacheAcrossCalls(t *testing.T) {
	c := repro.New(repro.WithEps(0.25), repro.WithAlgorithm(repro.Linear))
	defer c.Close()
	ctx := context.Background()
	in := testInstances(1)[0]
	if _, _, err := c.Schedule(ctx, in); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Schedule(ctx, in); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResultHits == 0 {
		t.Errorf("no result-cache hit after identical submissions: %+v", st)
	}
}
