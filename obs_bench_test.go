// Observability-overhead benchmarks (ISSUE 9): the instrumented hot
// path against the same path with recording disabled, plus the wire
// round-trip latency of the serving layer. BENCH_PR9.json snapshots
// the allocs/op of each (the bench gate); PERFORMANCE.md quotes the
// enabled-vs-disabled delta.
package repro_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/netserve"
	"repro/internal/obs"
	"repro/internal/service"
)

// benchObsOverhead runs the zero-alloc guard's workload (n=256,
// m=4096, Linear) through a warm scratch with recording on or off.
// The two series must stay within a few percent of each other — the
// whole point of the preregistered-atomics design — and both at
// 0 allocs/op.
func benchObsOverhead(b *testing.B, enabled bool) {
	prev := obs.SetEnabled(enabled)
	defer obs.SetEnabled(prev)
	in := moldable.Random(moldable.GenConfig{N: 256, M: 4096, Seed: 42})
	sc := core.NewScratch()
	ctx := obs.WithTraceID(context.Background(), "bench")
	opt := core.Options{Algorithm: core.Linear, Eps: 0.25}
	if _, _, err := core.ScheduleScratchCtx(ctx, in, opt, sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ScheduleScratchCtx(ctx, in, opt, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsOverhead_On(b *testing.B)  { benchObsOverhead(b, true) }
func BenchmarkObsOverhead_Off(b *testing.B) { benchObsOverhead(b, false) }

// wireSession starts a pipe-mode protocol session for a wire bench and
// returns the request writer, response decoder, and a shutdown func.
func wireSession(b *testing.B) (io.Writer, *json.Decoder, func()) {
	b.Helper()
	svc := service.New(service.Config{Workers: 2})
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- netserve.ServeLines(context.Background(), svc, inR, outW, netserve.ServeConfig{Probes: 16})
	}()
	return inW, json.NewDecoder(outR), func() {
		inW.Close()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		outW.Close()
		svc.Close()
	}
}

// BenchmarkWire_SubmitResult measures one submit + blocking-result
// round trip over the pipe transport: JSON decode, trace-id stamping,
// per-op metrics, admission, scheduling (result-cache hit after the
// first), JSON encode — the serving layer's end-to-end request cost.
func BenchmarkWire_SubmitResult(b *testing.B) {
	w, dec, stop := wireSession(b)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmt.Fprintf(w, `{"op":"submit","tag":"b","algo":"linear","eps":0.25,"instance":{"m":64,"jobs":[{"type":"amdahl","seq":2,"par":98},{"type":"perfect","w":8}]}}`+"\n")
		var sub netserve.Response
		if err := dec.Decode(&sub); err != nil {
			b.Fatal(err)
		}
		if sub.Code != "" {
			b.Fatalf("submit: %+v", sub)
		}
		fmt.Fprintf(w, "{\"op\":\"result\",\"id\":%d,\"wait\":true}\n", sub.ID)
		var res netserve.Response
		if err := dec.Decode(&res); err != nil {
			b.Fatal(err)
		}
		if res.Code != "" {
			b.Fatalf("result: %+v", res)
		}
	}
}

// BenchmarkWire_Stats measures the cheapest wire op — a stats poll —
// isolating the protocol fixed costs (scan, decode, dispatch, metrics,
// encode) from scheduling work.
func BenchmarkWire_Stats(b *testing.B) {
	w, dec, stop := wireSession(b)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io.WriteString(w, `{"op":"stats","tag":"b"}`+"\n")
		var st netserve.Response
		if err := dec.Decode(&st); err != nil {
			b.Fatal(err)
		}
	}
}
