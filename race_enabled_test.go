//go:build race

package repro_test

// raceEnabled reports whether this test binary was built with the race
// detector — performance-floor assertions are logged, not enforced,
// under its ~10× instrumentation overhead.
const raceEnabled = true
